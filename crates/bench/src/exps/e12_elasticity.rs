//! E12 — "elasticity in the large": scale-out under a diurnal trace
//! (§II, data-as-a-service).

use crate::report::Report;
use haec_energy::machine::MachineSpec;
use haec_sched::elastic::{diurnal_trace, run_cluster_sim, Provisioning};
use std::time::Duration;

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E12",
        "cluster provisioning under a diurnal load (96 × 15-min steps)",
        "data-as-a-service requires native elasticity in the large (§II); idle nodes waste the idle floor",
    );
    r.headers(["policy", "energy (kWh)", "SLA violations", "avg nodes", "trough/peak energy"]);

    let machine = MachineSpec::commodity_2013();
    let trace = diurnal_trace(96, 800.0);
    let step = Duration::from_secs(900);
    let cap = 100.0; // queries/s per node

    let policies = [
        Provisioning::Static(8),
        Provisioning::Static(4),
        Provisioning::Elastic { target_utilization: 0.85, min_nodes: 1, max_nodes: 8, boot_steps: 1 },
        Provisioning::Elastic { target_utilization: 0.85, min_nodes: 1, max_nodes: 8, boot_steps: 4 },
    ];
    let mut static_peak_kwh = 0.0;
    let mut elastic_kwh = 0.0;
    for p in policies {
        let out = run_cluster_sim(&machine, p, &trace, cap, step);
        let kwh = out.energy.watt_hours() / 1000.0;
        r.row([
            format!("{p}"),
            format!("{kwh:.2}"),
            format!("{}", out.sla_violations),
            format!("{:.1}", out.avg_nodes),
            format!("{:.2}", out.trough_peak_energy_ratio),
        ]);
        match p {
            Provisioning::Static(8) => static_peak_kwh = kwh,
            Provisioning::Elastic { boot_steps: 1, .. } => elastic_kwh = kwh,
            _ => {}
        }
    }
    assert!(elastic_kwh < static_peak_kwh, "elasticity saved nothing");
    r.note(format!(
        "elastic provisioning saves {:.0}% energy vs peak-static with zero-to-few SLA violations",
        (1.0 - elastic_kwh / static_peak_kwh) * 100.0
    ));
    r.note("slower node boot (4 steps) trades violations for the same energy — provisioning lag is the risk");
    r.note("trough/peak energy ratio ≪ 1 means the cluster became energy-proportional");
    r
}
