//! E17 — main/delta segmented storage: energy per query as a function of
//! delta fraction and merge cadence (§IV.B "energy efficiency by data
//! reduction"; the HANA-style main/delta architecture of ref \[1\]).
//!
//! The tentpole claim quantified here: running predicates on the
//! compressed main (zone-map pruning + scan-on-encoded, no decode) burns
//! fewer joules per answered query than the flat delta scan over the
//! same rows — and the one-off merge cost amortizes over a handful of
//! queries.

use crate::report::{fmt_joules, Report};
use haec_columnar::value::CmpOp;
use haec_exec::agg::AggKind;
use haecdb::prelude::*;

const ROWS: i64 = 256 * 1024;

fn fill(db: &mut Database, from: i64, to: i64) {
    for i in from..to {
        db.insert(
            "orders",
            &Record::new().with("id", i).with("region", i % 8).with("amount", (i * 7) % 1000),
        )
        .unwrap();
    }
}

fn fresh(merged_fraction: f64) -> Database {
    let mut db = Database::new();
    db.create_table(
        "orders",
        &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
    )
    .unwrap();
    db.set_merge_threshold("orders", usize::MAX).unwrap(); // manual control
    let cut = (ROWS as f64 * merged_fraction) as i64;
    fill(&mut db, 0, cut);
    db.merge("orders").unwrap();
    fill(&mut db, cut, ROWS);
    db
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E17",
        "main/delta storage: scan-on-compressed vs flat scan (256K rows)",
        "compressed main + zone maps cut DRAM traffic per query; merge cost amortizes quickly (§IV.B, [1])",
    );
    r.headers(["delta", "segments", "stored", "broad-scan E", "pruned-scan E", "rows(broad)", "vs flat"]);

    // A broad aggregate (touches every surviving segment) and a narrow
    // range on the sorted key (zone maps prune 7/8 of the segments).
    let broad = Query::scan("orders").filter("amount", CmpOp::Lt, 500).aggregate(AggKind::Count, "amount");
    let pruned =
        Query::scan("orders").filter("id", CmpOp::Ge, ROWS * 7 / 8).aggregate(AggKind::Sum, "amount");

    let mut flat_broad_energy = None;
    let mut merged_broad_energy = None;
    let mut reference_rows = None;
    for merged_fraction in [0.0, 0.5, 0.875, 1.0] {
        let db = fresh(merged_fraction);
        let t = db.table("orders").unwrap();
        let (segments, stored) = (t.segments().len(), t.encoded_bytes());
        let b = db.execute(&broad).unwrap();
        let p = db.execute(&pruned).unwrap();
        let rows_broad = b.rows.row(0).unwrap()[0].as_float().unwrap() as i64;
        match reference_rows {
            None => reference_rows = Some(rows_broad),
            Some(want) => assert_eq!(rows_broad, want, "answers must not depend on storage layout"),
        }
        if merged_fraction == 0.0 {
            flat_broad_energy = Some(b.energy.joules());
        }
        if merged_fraction == 1.0 {
            merged_broad_energy = Some(b.energy.joules());
        }
        let vs_flat = flat_broad_energy.map_or(1.0, |f| b.energy.joules() / f);
        r.row([
            format!("{:.1}%", (1.0 - merged_fraction) * 100.0),
            segments.to_string(),
            format!("{} KiB", stored / 1024),
            fmt_joules(b.energy.joules()),
            fmt_joules(p.energy.joules()),
            rows_broad.to_string(),
            format!("{:.2}x", vs_flat),
        ]);
    }
    let (flat, merged) = (flat_broad_energy.unwrap(), merged_broad_energy.unwrap());
    assert!(
        merged < flat,
        "acceptance: compressed-main scan ({merged} J) must beat the flat scan ({flat} J)"
    );
    r.note(format!(
        "fully-merged broad scan uses {:.1}% of the flat-scan energy at identical answers",
        merged / flat * 100.0
    ));

    // --- merge cadence: ingest + merge energy vs steady-state queries --
    r.note("cadence sweep: total energy for 256K inserts + merges, then 32 broad queries:");
    for (label, threshold) in [
        ("never (flat)", usize::MAX),
        ("once at 256K", 256 * 1024),
        ("every 64K", 64 * 1024),
        ("every 16K", 16 * 1024),
    ] {
        let mut db = Database::new();
        db.create_table(
            "orders",
            &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
        )
        .unwrap();
        db.set_merge_threshold("orders", threshold).unwrap();
        let before = db.meter().grand_total().joules();
        fill(&mut db, 0, ROWS);
        if threshold == 256 * 1024 {
            db.merge("orders").unwrap();
        }
        let ingest = db.meter().grand_total().joules() - before;
        let before_q = db.meter().grand_total().joules();
        for _ in 0..32 {
            db.execute(&broad).unwrap();
        }
        let queries = db.meter().grand_total().joules() - before_q;
        let t = db.table("orders").unwrap();
        r.note(format!(
            "  merge {label:>13}: {:>2} segments, {:>4} KiB, ingest+merge {}, 32 queries {}, total {}",
            t.segments().len(),
            t.encoded_bytes() / 1024,
            fmt_joules(ingest),
            fmt_joules(queries),
            fmt_joules(ingest + queries)
        ));
    }
    r.note("merges are incremental (old segments are never rewritten), so cadence costs no extra encode");
    r.note("energy: cadence only sets segment granularity — pruning resolution vs per-segment overhead —");
    r.note("and the one-off encode cost is won back within a few compressed scans");
    r
}
