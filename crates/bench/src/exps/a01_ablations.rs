//! A1 — ablations of the design choices this reproduction calls out: morsel
//! size, adaptive-select batch size, and checkpoint granularity.

use crate::report::{fmt_dur, time_it, Report};
use haec_columnar::value::CmpOp;
use haec_exec::morsel::parallel_morsels;
use haec_exec::select::AdaptiveSelect;
use haecdb::robust::{run_with_failures, RestartPolicy};

/// Runs the ablation suite.
pub fn run() -> Report {
    let mut r = Report::new(
        "A1",
        "ablations: morsel size, adaptive batch size, checkpoint granularity",
        "design-choice sensitivity for the mechanisms behind E4/E5/E14",
    );
    r.headers(["knob", "setting", "metric", "value"]);

    // --- morsel size: parallel sum over 8M rows ------------------------
    let data: Vec<i64> = (0..8_000_000).map(|i| (i % 1000) as i64).collect();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let expected: i64 = data.iter().sum();
    for morsel in [1_024usize, 16_384, 262_144, 4_194_304] {
        let (sum, wall) = time_it(|| {
            parallel_morsels(
                data.len(),
                threads,
                morsel,
                |m| data[m.start..m.end].iter().sum::<i64>(),
                |a, b| a + b,
                0i64,
            )
        });
        assert_eq!(sum, expected);
        r.row(["morsel rows".to_string(), format!("{morsel}"), "8M-row sum wall".into(), fmt_dur(wall)]);
    }
    r.note("tiny morsels pay dispatch overhead; huge morsels lose load balance — a wide plateau in between");

    // --- adaptive-select batch size: reaction to drift -----------------
    for batch_rows in [4_096usize, 65_536, 524_288] {
        let mut op = AdaptiveSelect::new(CmpOp::Lt, 0);
        let total_rows = 4_194_304usize;
        let batches = total_rows / batch_rows;
        let (switches, wall) = time_it(|| {
            for b in 0..batches {
                // Selectivity flips between phases mid-stream.
                let sel_neg = if b < batches / 2 { 1 } else { 100 };
                let data: Vec<i64> =
                    (0..batch_rows).map(|i| if i % 100 < sel_neg { -1 } else { 1 }).collect();
                op.run(&data);
            }
            op.switches()
        });
        r.row([
            "adaptive batch".to_string(),
            format!("{batch_rows}"),
            format!("switches over {batches} batches"),
            format!("{switches} ({})", fmt_dur(wall)),
        ]);
    }
    r.note("small batches react faster to drift but re-decide more often; 64k rows balances both");

    // --- checkpoint granularity at fixed failure rate -------------------
    let total = 8_000u64;
    for stages in [1usize, 4, 16, 64] {
        let plan = vec![total / stages as u64; stages];
        let rep = run_with_failures(&plan, 0.0005, RestartPolicy::Checkpoint, 7);
        r.row([
            "checkpoint stages".to_string(),
            format!("{stages}"),
            "waste %".into(),
            format!("{:.1}%", rep.waste_fraction() * 100.0),
        ]);
    }
    r.note("finer checkpoints bound the loss per failure but multiply the 5% overhead — an interior optimum");
    r
}
