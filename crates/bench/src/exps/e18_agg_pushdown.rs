//! E18 — aggregation pushdown: segment-wise partial aggregates folded
//! directly from the encoded main, vs the gather-and-fold it replaced
//! (§IV.B "energy efficiency by data reduction"; compression-aware
//! aggregation per Lin et al. \[PAPERS.md\]).
//!
//! The corrected energy ledger quantified here: the old gather path
//! decoded whole main columns into a flat `Vec<i64>` and billed only the
//! aggregate update plus 8 B/row — the decode CPU and the encoded-byte
//! DRAM traffic were never charged. Pushdown streams the encoded column
//! (billing decode cycles + encoded bytes honestly), answers MIN/MAX and
//! COUNT from zone maps/row counts when a segment survives whole (zero
//! column bytes), and beats an *honestly billed* gather on every query —
//! gather pays the same decode plus a full plain-column round trip.

use crate::report::{fmt_joules, Report};
use haec_columnar::value::CmpOp;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::ByteCount;
use haec_exec::agg::AggKind;
use haec_planner::cost::CostModel;
use haecdb::prelude::*;

const ROWS: i64 = 256 * 1024;

fn fresh(merged: bool) -> Database {
    let db = Database::new();
    db.create_table(
        "orders",
        &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
    )
    .unwrap();
    db.set_merge_threshold("orders", usize::MAX).unwrap();
    for i in 0..ROWS {
        db.insert(
            "orders",
            &Record::new().with("id", i).with("region", i % 8).with("amount", (i * 7) % 1000),
        )
        .unwrap();
    }
    if merged {
        db.merge("orders").unwrap();
    }
    db
}

/// What the replaced gather-and-fold honestly costs on the merged table:
/// decode the compressed column (decode cycles, encoded bytes read,
/// plain bytes written), then fold the materialized `Vec<i64>` (update
/// cycles, plain bytes re-read).
fn honest_gather_energy(machine: &MachineSpec, encoded_bytes: u64, rows: u64) -> f64 {
    let costs = KernelCosts::default_2013();
    let profile = ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::CompressDecode, rows)
            + costs.cycles_for(Kernel::AggUpdate, rows),
        dram_read: ByteCount::new(encoded_bytes + rows * 8),
        dram_written: ByteCount::new(rows * 8),
        ..ResourceProfile::default()
    };
    let ctx = ExecutionContext::parallel(machine.pstates().fastest(), machine.cores());
    CostEstimator::new(machine.clone()).estimate(&profile, ctx).energy.joules()
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E18",
        "aggregation pushdown on compressed segments vs gather-and-fold (256K rows)",
        "partial AggStates per segment, streamed from encoded data — decode + DRAM billed honestly, zone maps answer MIN/MAX for free",
    );
    r.headers(["query", "flat-delta E", "pushdown E", "vs flat", "dram read (pushdown)"]);

    let queries: [(&str, Query); 4] = [
        ("sum(amount)", Query::scan("orders").aggregate(AggKind::Sum, "amount")),
        ("min(id) [zone]", Query::scan("orders").aggregate(AggKind::Min, "id")),
        ("count [zone]", Query::scan("orders").aggregate(AggKind::Count, "amount")),
        (
            "sum by region, amount<500",
            Query::scan("orders")
                .filter("amount", CmpOp::Lt, 500)
                .group_by("region")
                .aggregate(AggKind::Sum, "amount"),
        ),
    ];

    let flat = fresh(false);
    let merged = fresh(true);
    let mut broad_sum = None;
    for (label, q) in &queries {
        let a = flat.execute(q).unwrap();
        let b = merged.execute(q).unwrap();
        // Answers must not depend on the storage layout.
        assert_eq!(a.rows.rows(), b.rows.rows(), "{label}");
        for row in 0..a.rows.rows() {
            assert_eq!(a.rows.row(row), b.rows.row(row), "{label} row {row}");
        }
        if *label == "sum(amount)" {
            broad_sum = Some(b.clone());
        }
        r.row([
            (*label).to_string(),
            fmt_joules(a.energy.joules()),
            fmt_joules(b.energy.joules()),
            format!("{:.2}x", b.energy.joules() / a.energy.joules().max(f64::MIN_POSITIVE)),
            format!("{} B", b.profile.dram_read.bytes()),
        ]);
    }

    // Zone-answered aggregates touch zero column bytes.
    for (kind, col) in [(AggKind::Min, "id"), (AggKind::Max, "id"), (AggKind::Count, "amount")] {
        let out = merged.execute(&Query::scan("orders").aggregate(kind, col)).unwrap();
        assert_eq!(out.profile.dram_read.bytes(), 0, "zone-answered {kind} reads no column bytes");
    }
    r.note("MIN/MAX/COUNT over fully-surviving segments answer from zone maps / row counts: 0 B read");

    // --- the acceptance ratio: pushdown vs gather on the SAME table ----
    let broad_sum = broad_sum.expect("broad sum ran");
    let t = merged.table("orders").unwrap();
    let encoded = t.column_encoded_bytes("amount").unwrap() as u64;
    let gather = honest_gather_energy(merged.machine(), encoded, ROWS as u64);
    let push = broad_sum.energy.joules();
    assert!(
        push < gather,
        "acceptance: pushdown ({push} J) must beat the honestly-billed gather ({gather} J)"
    );
    r.note(format!(
        "pushdown-vs-gather (honest bill, same merged table): sum(amount) {} vs {} — {:.0}% of gather",
        fmt_joules(push),
        fmt_joules(gather),
        push / gather * 100.0
    ));
    r.note(format!(
        "the old gather path under-billed that query as just AggUpdate + {} B — decode cycles and the {} B of encoded reads were free",
        ROWS * 8,
        encoded
    ));
    r.note(format!(
        "executed pushdown billed {} B DRAM + {} cycles; no main column is ever materialized",
        broad_sum.profile.dram_read.bytes(),
        broad_sum.profile.cpu_cycles.count(),
    ));

    // Planner view of the same trade-off.
    let model = CostModel::new(MachineSpec::commodity_2013());
    let push_model = model.agg_pushdown(ROWS as u64, encoded, 1, 1.0);
    let fold_model = model.aggregate(ROWS as u64, 1);
    r.note(format!(
        "planner view (CostModel::agg_pushdown): {push_model} pushed-down vs {fold_model} flat fold — \
         the crossover tracks the column's compression ratio"
    ));
    r
}
