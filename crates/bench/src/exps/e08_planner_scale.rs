//! E8 — ">10 000 tables in a query": planner scalability (§II).

use crate::report::{fmt_dur, time_it, Report};
use haec_planner::join_order::{plan_dp, plan_greedy, plan_left_deep, JoinGraph, DP_MAX_RELATIONS};

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E8",
        "join ordering at catalog scale (star queries)",
        "exhaustive optimizers cannot cope with 1000s of tables per query; heuristics must take over (§II)",
    );
    r.headers([
        "tables",
        "DP time",
        "DP C_out",
        "greedy time",
        "greedy C_out",
        "left-deep time",
        "left-deep C_out",
    ]);

    for n in [4usize, 8, 12] {
        let g = JoinGraph::star(n, 1.0e7, 1_000.0);
        let (dp, t_dp) = time_it(|| plan_dp(&g));
        let (gr, t_gr) = time_it(|| plan_greedy(&g));
        let (ld, t_ld) = time_it(|| plan_left_deep(&g));
        assert!(dp.cout <= gr.cout * 1.000001, "DP worse than greedy at n={n}");
        r.row([
            format!("{n}"),
            fmt_dur(t_dp),
            format!("{:.2e}", dp.cout),
            fmt_dur(t_gr),
            format!("{:.2e}", gr.cout),
            fmt_dur(t_ld),
            format!("{:.2e}", ld.cout),
        ]);
    }
    for n in [100usize, 1_000, 10_000] {
        let g = JoinGraph::star(n, 1.0e7, 1_000.0);
        let (gr, t_gr) = time_it(|| plan_greedy(&g));
        let (ld, t_ld) = time_it(|| plan_left_deep(&g));
        r.row([
            format!("{n}"),
            "(infeasible)".into(),
            "-".into(),
            fmt_dur(t_gr),
            format!("{:.2e}", gr.cout),
            fmt_dur(t_ld),
            format!("{:.2e}", ld.cout),
        ]);
    }
    r.note(format!(
        "DP is hard-capped at {DP_MAX_RELATIONS} relations (2^n state); beyond that only the polynomial planners answer"
    ));
    r.note(
        "greedy matches DP plan quality on star/chain shapes; left-deep stays ~O(n log n) to 10 000 tables",
    );
    r
}
