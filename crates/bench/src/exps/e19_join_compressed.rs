//! E19 — equi-joins executed on compressed segments: keys streamed from
//! the encoded main (dictionary codes join code-to-code), probe
//! segments pre-pruned against the build side's key range, payloads
//! gathered late — vs the decode-then-join baseline that materializes
//! whole referenced columns first (§IV.B "energy efficiency by data
//! reduction"; compression-aware operators per Lin et al.
//! \[PAPERS.md\]).
//!
//! The claim quantified here: a join never needs the flat key columns.
//! Streaming the encoded keys into the hash build/probe, pruning probe
//! segments by zone intersection, and touching payloads only for
//! surviving pairs beats the decode-whole-columns pipeline this PR
//! retires — decisively on the analytical shapes (filters, narrow
//! projections, selective build sides), honestly reported at full
//! cardinality where late materialization is closest to break-even.

use crate::report::{fmt_joules, Report};
use haec_columnar::value::CmpOp;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::ByteCount;
use haecdb::prelude::*;

const FACT_ROWS: i64 = 256 * 1024;
const DIM_ROWS: i64 = 4 * 1024;

const COUNTRIES: [&str; 8] = ["de", "us", "fr", "jp", "br", "in", "cn", "au"];

fn fresh() -> Database {
    let db = Database::new();
    db.create_table("users", &[("uid", DataType::Int64), ("country", DataType::Str)]).unwrap();
    db.create_table(
        "orders",
        &[
            ("oid", DataType::Int64),
            ("user_id", DataType::Int64),
            ("amount", DataType::Int64),
            ("country", DataType::Str),
        ],
    )
    .unwrap();
    db.create_table("rates", &[("country", DataType::Str), ("rate", DataType::Int64)]).unwrap();
    db.set_merge_threshold("users", usize::MAX).unwrap();
    db.set_merge_threshold("orders", usize::MAX).unwrap();
    db.set_merge_threshold("rates", usize::MAX).unwrap();
    for i in 0..DIM_ROWS {
        db.insert(
            "users",
            &Record::new().with("uid", i).with("country", COUNTRIES[i as usize % COUNTRIES.len()]),
        )
        .unwrap();
    }
    for (i, c) in COUNTRIES.iter().enumerate() {
        db.insert("rates", &Record::new().with("country", *c).with("rate", 5 + i as i64)).unwrap();
    }
    for i in 0..FACT_ROWS {
        db.insert(
            "orders",
            &Record::new()
                .with("oid", i)
                .with("user_id", i % DIM_ROWS)
                .with("amount", (i * 7) % 1000)
                .with("country", COUNTRIES[(i as usize / 3) % COUNTRIES.len()]),
        )
        .unwrap();
    }
    db.merge("users").unwrap();
    db.merge("orders").unwrap();
    db.merge("rates").unwrap();
    db
}

/// One side of the naive pipeline: `rows` are decoded (whole referenced
/// columns), `join_rows` reach the join (post-filter).
struct NaiveSide {
    rows: u64,
    join_rows: u64,
    cols: u64,
    encoded: u64,
}

/// What the decode-then-join pipeline this PR retires honestly costs:
/// materialize **every referenced column** of both tables as flat
/// vectors (decode cycles, encoded reads, plain writes — exactly what
/// "decode whole main columns first" means), hash-join the flat key
/// arrays with the same bucket-traffic bill the streaming path pays,
/// then copy the output cells from the decoded columns. The baseline's
/// filter scans over the decoded columns are *not* billed — generous
/// to the baseline.
fn decode_then_join_energy(
    machine: &MachineSpec,
    build: &NaiveSide,
    probe: &NaiveSide,
    out_pairs: u64,
    out_cols: u64,
) -> f64 {
    let costs = KernelCosts::default_2013();
    let n = build.join_rows + probe.join_rows;
    let decoded_vals = build.rows * build.cols + probe.rows * probe.cols;
    let out_cells = out_pairs * out_cols;
    let profile = ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::CompressDecode, decoded_vals)
            + costs.cycles_for(Kernel::HashBuild, build.join_rows)
            + costs.cycles_for(Kernel::HashProbe, probe.join_rows)
            + costs.cycles_for(Kernel::Materialize, out_cells),
        // Encoded inputs, the flat key columns re-read during the join
        // (plus bucket headers and hit lists), and the decoded columns
        // re-read for the output copies.
        dram_read: ByteCount::new(
            build.encoded + probe.encoded + n * 8 + probe.join_rows * 16 + out_pairs * 4 + out_cells * 8,
        ),
        // The materialized flat columns, the build table, the pairs,
        // the output cells.
        dram_written: ByteCount::new(decoded_vals * 8 + build.join_rows * 16 + out_pairs * 8 + out_cells * 8),
        ..ResourceProfile::default()
    };
    let ctx = ExecutionContext::parallel(machine.pstates().fastest(), machine.cores());
    CostEstimator::new(machine.clone()).estimate(&profile, ctx).energy.joules()
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E19",
        "joins on compressed segments vs decode-then-join (256K ⋈ 4K)",
        "join keys stream from encoded columns — code-to-code for strings — with probe segments zone-pruned against the build key range; no flat key column is ever materialized",
    );
    r.headers(["join", "pairs", "executed E", "decode-then-join E", "ratio", "dram read"]);

    let db = fresh();
    let encoded = |db: &Database, t: &str, cols: &[&str]| {
        cols.iter().map(|c| db.table(t).unwrap().column_encoded_bytes(c).unwrap() as u64).sum::<u64>()
    };
    let (fact, dim) = (FACT_ROWS as u64, DIM_ROWS as u64);
    // Rows surviving `amount < cut` — the shared predicate of the
    // filtered queries below.
    let survivors_lt = |cut: i64| (0..FACT_ROWS).filter(|i| (i * 7) % 1000 < cut).count() as u64;

    // --- 1: FK join at full cardinality, narrow projection ------------
    let q = Query::scan("orders").join("users", "user_id", "uid").select(["user_id", "amount"]);
    let out = db.execute(&q).unwrap();
    assert_eq!(out.rows.rows(), FACT_ROWS as usize, "every order matches exactly one user");
    let baseline = decode_then_join_energy(
        db.machine(),
        &NaiveSide { rows: dim, join_rows: dim, cols: 1, encoded: encoded(&db, "users", &["uid"]) },
        &NaiveSide {
            rows: fact,
            join_rows: fact,
            cols: 2,
            encoded: encoded(&db, "orders", &["user_id", "amount"]),
        },
        fact,
        2,
    );
    r.row([
        "orders⋈users, full output".to_string(),
        out.rows.rows().to_string(),
        fmt_joules(out.energy.joules()),
        fmt_joules(baseline),
        format!("{:.2}x", out.energy.joules() / baseline),
        format!("{} B", out.profile.dram_read.bytes()),
    ]);
    let flat_keys = (fact + dim) * 8;
    r.note(format!(
        "full FK join read {} B in total (mostly hash-bucket traffic; the encoded key streams are \
         ~{} B where the flat key columns would be {} B) — at 100% output the 35-cycle probes make \
         both pipelines CPU-bound, so this worst case is ~break-even on energy; every selective \
         shape below wins outright",
        out.profile.dram_read.bytes(),
        encoded(&db, "orders", &["user_id"]) + encoded(&db, "users", &["uid"]),
        flat_keys
    ));

    // --- 2: the analytical shape — filtered probe, 3-column output ----
    let q = Query::scan("orders").join("users", "user_id", "uid").filter("amount", CmpOp::Lt, 100).select([
        "user_id",
        "amount",
        "users.country",
    ]);
    let out = db.execute(&q).unwrap();
    let survivors = survivors_lt(100);
    assert_eq!(out.rows.rows() as u64, survivors);
    let baseline = decode_then_join_energy(
        db.machine(),
        &NaiveSide {
            rows: dim,
            join_rows: dim,
            cols: 2,
            encoded: encoded(&db, "users", &["uid", "country"]),
        },
        &NaiveSide {
            rows: fact,
            join_rows: survivors,
            cols: 2,
            encoded: encoded(&db, "orders", &["user_id", "amount"]),
        },
        survivors,
        3,
    );
    assert!(
        out.energy.joules() < baseline,
        "acceptance: filtered compressed join ({} J) must beat decode-then-join ({baseline} J)",
        out.energy.joules()
    );
    let flagship_ratio = out.energy.joules() / baseline;
    assert!(
        out.profile.dram_read.bytes() < flat_keys,
        "filtered join read {} B — even including scan, buckets and gather it must stay below \
         the {flat_keys} B the flat key columns alone would cost",
        out.profile.dram_read.bytes()
    );
    r.row([
        "⋈ + amount<100 (10%)".to_string(),
        out.rows.rows().to_string(),
        fmt_joules(out.energy.joules()),
        fmt_joules(baseline),
        format!("{:.2}x", out.energy.joules() / baseline),
        format!("{} B", out.profile.dram_read.bytes()),
    ]);

    // --- 3: string keys, code-to-code ---------------------------------
    let q = Query::scan("orders")
        .join("rates", "country", "country")
        .filter("amount", CmpOp::Lt, 100)
        .select(["amount", "country", "rates.rate"]);
    let out = db.execute(&q).unwrap();
    let survivors = survivors_lt(100);
    assert_eq!(out.rows.rows() as u64, survivors, "every order joins its country's rate");
    let baseline = decode_then_join_energy(
        db.machine(),
        &NaiveSide {
            rows: COUNTRIES.len() as u64,
            join_rows: COUNTRIES.len() as u64,
            cols: 2,
            encoded: encoded(&db, "rates", &["country", "rate"]),
        },
        &NaiveSide {
            rows: fact,
            join_rows: survivors,
            cols: 2,
            encoded: encoded(&db, "orders", &["country", "amount"]),
        },
        survivors,
        3,
    );
    assert!(out.energy.joules() < baseline, "string code-to-code join must beat decode-then-join");
    r.row([
        "orders⋈rates (str codes)".to_string(),
        out.rows.rows().to_string(),
        fmt_joules(out.energy.joules()),
        fmt_joules(baseline),
        format!("{:.2}x", out.energy.joules() / baseline),
        format!("{} B", out.profile.dram_read.bytes()),
    ]);
    // --- 4: zone intersection — narrow build key range prunes probe ---
    // A sorted fact key (oid = insertion order, 4 segments) joined
    // against a dimension covering one segment's range vs one spread
    // over the whole table: same build size, same pair count — the
    // narrow build range lets zone intersection skip 3 of 4 probe
    // segments before a byte of them is read.
    db.create_table("recent", &[("rk", DataType::Int64)]).unwrap();
    db.create_table("spread", &[("rk", DataType::Int64)]).unwrap();
    db.set_merge_threshold("recent", usize::MAX).unwrap();
    db.set_merge_threshold("spread", usize::MAX).unwrap();
    for i in 0..DIM_ROWS {
        db.insert("recent", &Record::new().with("rk", 250_000 + i)).unwrap();
        db.insert("spread", &Record::new().with("rk", i * 64)).unwrap();
    }
    db.merge("recent").unwrap();
    db.merge("spread").unwrap();
    let narrow = db.execute(&Query::scan("orders").join("recent", "oid", "rk").select(["oid"])).unwrap();
    let broad = db.execute(&Query::scan("orders").join("spread", "oid", "rk").select(["oid"])).unwrap();
    assert_eq!(narrow.rows.rows(), DIM_ROWS as usize);
    assert_eq!(broad.rows.rows(), DIM_ROWS as usize);
    assert!(
        narrow.profile.dram_read.bytes() < broad.profile.dram_read.bytes(),
        "zone-pruned probe ({} B) must read less than the unprunable one ({} B)",
        narrow.profile.dram_read.bytes(),
        broad.profile.dram_read.bytes()
    );
    assert!(narrow.energy.joules() < broad.energy.joules());
    r.row([
        "orders⋈recent (1 of 4 zones)".to_string(),
        narrow.rows.rows().to_string(),
        fmt_joules(narrow.energy.joules()),
        "\u{2014}".to_string(),
        format!("{:.2}x vs spread", narrow.energy.joules() / broad.energy.joules()),
        format!("{} B", narrow.profile.dram_read.bytes()),
    ]);
    r.note(format!(
        "same 4K-row build side, same 4K pairs: a build key range covering one probe segment reads \
         {} B / {} vs {} B / {} when the range spans every segment — the join-specific \
         zone intersection at work",
        narrow.profile.dram_read.bytes(),
        fmt_joules(narrow.energy.joules()),
        broad.profile.dram_read.bytes(),
        fmt_joules(broad.energy.joules()),
    ));
    r.note(format!(
        "acceptance: the filtered FK join uses {:.0}% of the decode-then-join energy at identical answers",
        flagship_ratio * 100.0
    ));
    r
}
