//! E7 — multi-level storage: high-density data in memory, low-density
//! data on cheap media; temperature-based aging (§IV.B).

use crate::report::{fmt_dur, Report};
use haec_energy::units::ByteCount;
use haec_sim::rng::SimRng;
use haec_storage::hierarchy::{Hierarchy, PlacementPolicy, SegmentId};
use haec_storage::temperature::{AccessKind, DensityClass};
use std::time::Duration;

struct Outcome {
    avg_point: Duration,
    avg_scan: Duration,
    static_w: f64,
    migrations: usize,
}

fn drive(policy: PlacementPolicy) -> Outcome {
    let mut h = Hierarchy::new(policy);
    let mut rng = SimRng::seed(7);
    // 8 hot business segments, 24 cold click-stream segments.
    let hot: Vec<SegmentId> =
        (0..8).map(|_| h.create_segment(ByteCount::from_mib(64), DensityClass::High)).collect();
    let cold: Vec<SegmentId> =
        (0..24).map(|_| h.create_segment(ByteCount::from_mib(512), DensityClass::Low)).collect();

    let mut point_total = Duration::ZERO;
    let mut point_n = 0u32;
    let mut scan_total = Duration::ZERO;
    let mut scan_n = 0u32;
    let mut migrations = 0usize;
    for round in 0..60 {
        // OLTP: 50 point accesses on hot data per round.
        for _ in 0..50 {
            let seg = hot[rng.uniform_u64(hot.len() as u64) as usize];
            point_total += h.access(seg, AccessKind::Point).time;
            point_n += 1;
        }
        // Analytics: occasionally scan one cold segment.
        if round % 10 == 0 {
            let seg = cold[rng.uniform_u64(cold.len() as u64) as usize];
            scan_total += h.access(seg, AccessKind::Scan).time;
            scan_n += 1;
        }
        h.tick(Duration::from_secs(60));
        migrations += h.age().len();
    }
    Outcome {
        avg_point: point_total / point_n.max(1),
        avg_scan: scan_total / scan_n.max(1),
        static_w: h.static_power_watts(),
        migrations,
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E7",
        "storage hierarchy: placement policy comparison",
        "high-density data stays point-addressable in memory; low-density data lives on cheap media; aging moves the rest (§IV.B)",
    );
    r.headers(["policy", "avg point access", "avg cold scan", "data static power", "migrations"]);

    let mut results = Vec::new();
    for policy in [PlacementPolicy::Static, PlacementPolicy::TemperatureOnly, PlacementPolicy::DensityAware] {
        let o = drive(policy);
        r.row([
            format!("{policy}"),
            fmt_dur(o.avg_point),
            fmt_dur(o.avg_scan),
            format!("{:.2} W", o.static_w),
            format!("{}", o.migrations),
        ]);
        results.push((policy, o));
    }
    let static_pol = &results[0].1;
    let density = &results[2].1;
    assert!(
        density.avg_point <= static_pol.avg_point * 2,
        "density-aware placement must keep hot point access fast"
    );
    r.note("density-aware keeps hot data in DRAM/NVM (fast points) while cold bulk leaves DRAM (lower static power)");
    r.note("temperature-only may demote briefly-idle hot data and pay migration + latency for it");
    r
}
