//! E20 — late materialization on codes, end to end: string projections
//! reach the client `Chunk` as dictionary codes + one shared output
//! dictionary, so a `SELECT` moves 4-byte codes per row and decodes
//! each **distinct** value exactly once — vs the decode-early path it
//! replaced, which re-read the dictionary entry and re-hashed the
//! string for *every* projected row (§IV.B "energy efficiency by data
//! reduction"; operating on codes per Lin et al. \[PAPERS.md\]).
//!
//! The baseline here is the *honestly billed* decode-early projection:
//! the same executed query profile plus the per-row dictionary-entry
//! reads and per-row string hashes the codes path avoids. The gap
//! therefore scales with `rows − distinct` — wide at low NDV or high
//! selectivity, vanishing when every projected row is distinct (which
//! the table reports honestly as ~1.00x).

use crate::report::{fmt_joules, Report};
use haec_columnar::value::CmpOp;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::ByteCount;
use haec_planner::cost::CostModel;
use haecdb::prelude::*;

const ROWS: i64 = 128 * 1024;

/// A merged table with two projected string columns of `ndv` distinct
/// values each (9-byte entries), keyed by a dense ascending id.
fn fresh(ndv: i64) -> Database {
    let db = Database::new();
    db.create_table("events", &[("id", DataType::Int64), ("tag", DataType::Str), ("name", DataType::Str)])
        .unwrap();
    db.set_merge_threshold("events", usize::MAX).unwrap();
    for i in 0..ROWS {
        db.insert(
            "events",
            &Record::new()
                .with("id", i)
                .with("tag", format!("tag-{:04}", i % ndv))
                .with("name", format!("nam-{:04}", (i * 7 + 3) % ndv)),
        )
        .unwrap();
    }
    db.merge("events").unwrap();
    db
}

/// What decode-early would add on top of the executed profile, for one
/// projected string column: every row past the first touch of its value
/// re-reads the dictionary entry and re-hashes the string, where the
/// codes path pays both once per **distinct** value.
fn decode_early_extra(costs: &KernelCosts, rows: u64, distinct: u64, avg_len: u64) -> ResourceProfile {
    let repeats = rows.saturating_sub(distinct);
    ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::HashBuild, repeats),
        dram_read: ByteCount::new(repeats * avg_len),
        ..ResourceProfile::default()
    }
}

/// Runs one projection query and compares it against its decode-early
/// baseline. Returns `(codes energy, baseline energy, extra bytes)`.
fn measure(db: &mut Database, q: &Query) -> (f64, f64, u64) {
    let costs = KernelCosts::default_2013();
    let out = db.execute(q).unwrap();
    let mut extra = ResourceProfile::default();
    for (_, col) in out.rows.iter() {
        if let Some(d) = col.as_str() {
            let avg = d.avg_entry_bytes() as u64;
            extra += decode_early_extra(&costs, d.len() as u64, d.dict_size() as u64, avg);
        }
    }
    // Must track `Database`'s own execution context (all cores, fastest
    // P-state — same as e18's baseline) so both sides of the ratio are
    // estimated under identical conditions.
    let ctx = ExecutionContext::parallel(db.machine().pstates().fastest(), db.machine().cores());
    let baseline_profile = out.profile + extra;
    let baseline = CostEstimator::new(db.machine().clone()).estimate(&baseline_profile, ctx).energy.joules();
    (out.energy.joules(), baseline, extra.dram_read.bytes())
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E20",
        "late materialization on codes: string projections to the client (128K rows, 2 string columns)",
        "codes + one shared output dictionary per column — each distinct value decoded once — vs the honestly-billed decode-early projection",
    );
    r.headers(["config", "rows out", "out dict", "codes E", "decode-early E", "ratio"]);

    let mut headline = None;
    // Selectivity sweep at moderate NDV, then NDV sweep at 10%.
    let configs: Vec<(String, i64, i64)> = [(1, 64i64), (10, 64), (50, 64), (100, 64)]
        .iter()
        .map(|&(pct, ndv)| (format!("sel {pct:3}%, ndv {ndv}"), pct, ndv))
        .chain(
            [(8i64, 10i64), (1024, 10), (16384, 10)]
                .iter()
                .map(|&(ndv, pct)| (format!("sel {pct:3}%, ndv {ndv}"), pct, ndv)),
        )
        .collect();
    for (label, pct, ndv) in configs {
        let mut db = fresh(ndv);
        let q = Query::scan("events").filter("id", CmpOp::Lt, ROWS * pct / 100).select(["tag", "name"]);
        let (codes, decode, extra_bytes) = measure(&mut db, &q);
        let rows_out = (ROWS * pct / 100) as u64;
        let distinct = (ndv as u64).min(rows_out);
        // Acceptance gates. Bytes: at selectivity ≤ 10% the codes path
        // must read strictly fewer bytes than decode-early (every repeat
        // it skips is a read the baseline pays). Energy: strictly < 1.0
        // whenever values actually repeat.
        if pct <= 10 && rows_out > distinct {
            assert!(extra_bytes > 0, "{label}: decode-early must read strictly more bytes");
        }
        if rows_out > distinct * 2 {
            assert!(
                codes < decode,
                "{label}: codes-to-client ({codes} J) must beat decode-early ({decode} J)"
            );
        }
        if pct == 10 && ndv == 64 {
            headline = Some((codes, decode));
        }
        r.row([
            label,
            format!("{rows_out}"),
            format!("{distinct}"),
            fmt_joules(codes),
            fmt_joules(decode),
            format!("{:.2}x", codes / decode.max(f64::MIN_POSITIVE)),
        ]);
    }

    let (codes, decode) = headline.expect("headline config ran");
    r.note(format!(
        "headline (sel 10%, ndv 64): codes-to-client = {:.0}% of the honestly-billed decode-early \
         projection — the README acceptance number",
        codes / decode * 100.0
    ));
    r.note(
        "the all-distinct worst case (ndv 16384 at sel 10%) is reported honestly as ~1.00x: \
         nothing repeats, so there is nothing for codes to save",
    );

    // Planner view of the same trade-off (what `Database::execute` adds
    // to both access-path candidates).
    let model = CostModel::new(haec_energy::machine::MachineSpec::commodity_2013());
    let p_codes = model.project_codes(ROWS as u64 / 10, 64, 8);
    let p_decode = model.project_decode(ROWS as u64 / 10, 64, 8);
    r.note(format!(
        "planner view (CostModel::project_codes vs project_decode, 13K rows / 64 distinct): \
         {p_codes} vs {p_decode}"
    ));
    r
}
