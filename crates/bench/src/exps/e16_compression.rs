//! E16 — lightweight compression substrate: ratios, codec throughput,
//! and scanning without decompression (feeds E3; §IV.B, ref \[1\]).

use crate::report::{fmt_rate, time_it, Report};
use haec_columnar::bitmap::Bitmap;
use haec_columnar::encoding::{EncodedInts, Scheme};
use haec_columnar::value::CmpOp;

fn dataset(name: &str, n: usize) -> Vec<i64> {
    match name {
        "constant" => vec![42; n],
        "runs" => (0..n).map(|i| (i / 512) as i64 % 37).collect(),
        "narrow" => (0..n).map(|i| 1_000_000 + ((i * 2_654_435_761) % 256) as i64).collect(),
        "timestamps" => (0..n).map(|i| 1_360_000_000_000 + (i as i64) * 33).collect(),
        "random" => (0..n).map(|i| ((i as i64).wrapping_mul(0x9E3779B97F4A7C15u64 as i64)) >> 3).collect(),
        _ => unreachable!("unknown dataset"),
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E16",
        "lightweight integer compression (1M values per dataset)",
        "column stores scan compressed data in place; the ratio feeds the shipping decision of E3 (§IV.B, [1])",
    );
    r.headers(["dataset", "scheme", "ratio", "encode", "decode", "scan-compressed", "auto picks"]);

    let n = 1_000_000usize;
    for name in ["constant", "runs", "narrow", "timestamps", "random"] {
        let data = dataset(name, n);
        let auto_scheme = EncodedInts::auto(&data).scheme();
        for scheme in Scheme::ALL {
            let (encoded, enc_t) = time_it(|| EncodedInts::encode(&data, scheme));
            let (decoded, dec_t) = time_it(|| encoded.decode());
            assert_eq!(decoded.len(), data.len(), "lossy codec?!");
            let lit = data[n / 2];
            let (hits, scan_t) = time_it(|| {
                let mut bm = Bitmap::zeros(data.len());
                encoded.scan(CmpOp::Ge, lit, &mut bm);
                bm.count_ones()
            });
            assert!(hits > 0);
            r.row([
                name.to_string(),
                format!("{scheme}"),
                format!("{:.1}x", encoded.stats().ratio()),
                fmt_rate(n as f64 / enc_t.as_secs_f64()),
                fmt_rate(n as f64 / dec_t.as_secs_f64()),
                fmt_rate(n as f64 / scan_t.as_secs_f64()),
                if scheme == auto_scheme { "←" } else { "" }.to_string(),
            ]);
        }
    }
    r.note("RLE scans run-at-a-time: orders of magnitude faster than row-at-a-time on run-heavy data");
    r.note("FOR keeps O(1) random access; delta wins on timestamps but decodes sequentially");
    r.note("`auto` picks the smallest encoding per column — the storage default");
    r
}
