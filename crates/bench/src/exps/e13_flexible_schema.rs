//! E13 — "data comes first, schema comes second": load-to-query time
//! with drifting record shapes (§II).

use crate::report::{fmt_dur, time_it, Report};
use haecdb::prelude::*;

fn record(i: i64) -> Record {
    // Fields appear over time: `src` from the start, `clicks` after 25%,
    // `geo` after 60% — the web-style drift the paper describes.
    let mut rec = Record::new().with("user", i % 10_000).with("src", i % 7);
    if i > 25_000 {
        rec.set("clicks", i % 13);
    }
    if i > 60_000 {
        rec.set("geo", i % 3);
    }
    rec
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E13",
        "flexible vs strict schema: load-to-query time (100k drifting records)",
        "web-style data arrives before its schema; the system must evolve the physical layout online (§II)",
    );
    r.headers(["mode", "discovery pass", "load", "evolved cols", "first query", "total to first answer"]);

    let n = 100_000i64;

    // Flexible: one pass, schema evolves inline.
    let flex_db = Database::new();
    flex_db.create_flexible_table("events").unwrap();
    let (_, flex_load) = time_it(|| {
        for i in 0..n {
            flex_db.insert("events", &record(i)).unwrap();
        }
    });
    let (flex_out, flex_query) = time_it(|| {
        flex_db
            .execute(&Query::scan("events").filter("user", CmpOp::Lt, 100).aggregate(AggKind::Count, "user"))
            .unwrap()
    });
    let evolved = flex_db.table("events").unwrap().schema().evolved_columns();
    r.row([
        "flexible".into(),
        "-".into(),
        fmt_dur(flex_load),
        format!("{evolved}"),
        fmt_dur(flex_query),
        fmt_dur(flex_load + flex_query),
    ]);

    // Strict: classical workflow — discover all fields first (an extra
    // full pass over the raw data), declare, then load.
    let (fields, discover) = time_it(|| {
        let mut fields: Vec<String> = Vec::new();
        for i in 0..n {
            for (name, _) in record(i).iter() {
                if !fields.iter().any(|f| f == name) {
                    fields.push(name.to_string());
                }
            }
        }
        fields
    });
    let strict_db = Database::new();
    let cols: Vec<(&str, DataType)> = fields.iter().map(|f| (f.as_str(), DataType::Int64)).collect();
    strict_db.create_table("events", &cols).unwrap();
    let (_, strict_load) = time_it(|| {
        for i in 0..n {
            // Strict mode requires every declared field: fill the gaps.
            let mut rec = record(i);
            for f in &fields {
                if rec.get(f).is_none() {
                    rec.set(f.clone(), 0i64);
                }
            }
            strict_db.insert("events", &rec).unwrap();
        }
    });
    let (strict_out, strict_query) = time_it(|| {
        strict_db
            .execute(&Query::scan("events").filter("user", CmpOp::Lt, 100).aggregate(AggKind::Count, "user"))
            .unwrap()
    });
    r.row([
        "strict".into(),
        fmt_dur(discover),
        fmt_dur(strict_load),
        "0".into(),
        fmt_dur(strict_query),
        fmt_dur(discover + strict_load + strict_query),
    ]);

    // Same answer either way.
    assert_eq!(
        flex_out.rows.row(0).unwrap()[0].as_float(),
        strict_out.rows.row(0).unwrap()[0].as_float(),
        "modes disagree on the query answer"
    );
    r.note(format!("schema evolved {evolved} columns online in flexible mode (zero DDL)"));
    r.note("strict mode pays an extra discovery pass before any load can start — the load-to-query gap");
    r
}
