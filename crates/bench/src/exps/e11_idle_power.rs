//! E11 — "energy can be saved if individual hardware components are
//! turned off to save idle power" (§IV): core parking across load
//! levels.

use crate::report::{fmt_joules, Report};
use haec_sched::governor::GovernorPolicy;
use haec_sched::server::{run_server_sim, ServerSimConfig};
use std::time::Duration;

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E11",
        "idle power: parking governors across utilization",
        "turning components off saves idle power; per-query response time may suffer (§IV)",
    );
    r.headers(["load q/s", "governor", "util", "avg power", "J/query", "p95 resp"]);

    let mut race_low_power = 0.0;
    let mut ondemand_low_power = 0.0;
    for rate in [5.0, 25.0, 100.0, 250.0] {
        for gov in [GovernorPolicy::RaceToIdle, GovernorPolicy::OnDemand] {
            let mut cfg = ServerSimConfig::default_mix();
            cfg.arrival_rate = rate;
            cfg.mean_work_cycles = 1.5e8;
            cfg.horizon = Duration::from_secs(40);
            cfg.governor = gov;
            let out = run_server_sim(&cfg);
            r.row([
                format!("{rate:.0}"),
                format!("{gov}"),
                format!("{:.0}%", out.utilization * 100.0),
                format!("{:.0} W", out.avg_power.watts()),
                fmt_joules(out.energy_per_query.joules()),
                format!(
                    "{:.1} ms",
                    out.response.quantile_duration(0.95).unwrap_or_default().as_secs_f64() * 1e3
                ),
            ]);
            if rate == 5.0 {
                match gov {
                    GovernorPolicy::RaceToIdle => race_low_power = out.avg_power.watts(),
                    _ => ondemand_low_power = out.avg_power.watts(),
                }
            }
        }
    }
    // Race-to-idle parks cores (2% leakage) while ondemand only halts
    // them (30% leakage): at low load, parking must win.
    assert!(
        race_low_power < ondemand_low_power,
        "parking saved nothing: race {race_low_power} W vs ondemand {ondemand_low_power} W"
    );
    r.note("race-to-idle parks idle cores (deep power gating) → lowest idle draw at low load");
    r.note("ondemand keeps cores in halt for fast wake — the latency/idle-power trade the paper names");
    r
}
