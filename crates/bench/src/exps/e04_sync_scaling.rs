//! E4 — synchronization overhead in parallel aggregation (§III, ref \[6\]):
//! mutex vs atomic vs optimistic vs partitioned.

use crate::report::{fmt_dur, Report};
use haec_exec::agg::{parallel_group_sum, predicted_speedup, SyncStrategy};

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E4",
        "parallel aggregation: synchronization strategies",
        "splitting an aggregation into many threads implies high synchronization overhead; optimistic/partitioned schemes recover the speedup (§III, [6],[7])",
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    r.headers(["strategy", "threads", "groups", "measured", "model speedup @t", "model @128t"]);

    let n = 2_000_000usize;
    let groups = 8usize;
    let keys: Vec<u32> = (0..n).map(|i| ((i * 2_654_435_761) % groups) as u32).collect();
    let values: Vec<i64> = (0..n).map(|i| (i % 1000) as i64).collect();

    let mut partitioned_beats_mutex_in_model = false;
    for strategy in SyncStrategy::ALL {
        for threads in [1, cores] {
            let rep = parallel_group_sum(&keys, &values, groups, threads, strategy);
            let model_here = predicted_speedup(strategy, threads, groups);
            let model_128 = predicted_speedup(strategy, 128, groups);
            r.row([
                format!("{strategy}"),
                format!("{threads}"),
                format!("{groups}"),
                fmt_dur(rep.wall),
                format!("{model_here:.2}x"),
                format!("{model_128:.1}x"),
            ]);
        }
        if strategy == SyncStrategy::Partitioned
            && predicted_speedup(SyncStrategy::Partitioned, 128, groups)
                > 4.0 * predicted_speedup(SyncStrategy::Mutex, 128, groups)
        {
            partitioned_beats_mutex_in_model = true;
        }
    }
    assert!(partitioned_beats_mutex_in_model, "model lost the paper's headline gap");
    r.note(format!(
        "measured columns use {cores} physical core(s); the model extrapolates to the paper's 'hundreds of threads'"
    ));
    r.note("with few groups (contended), mutex collapses and partitioned scales near-linearly");

    // Retry visibility under maximal contention (optimistic scheme).
    let hot =
        parallel_group_sum(&vec![0u32; 500_000], &vec![1i64; 500_000], 1, cores, SyncStrategy::Optimistic);
    r.note(format!("optimistic CAS retries on a single hot group with {} threads: {}", cores, hot.retries));
    r
}
