//! E5 — selectivity-adaptive selection kernels (§IV.B, Ross TODS'04):
//! branching vs predicated vs bitwise, plus the adaptive operator.

use crate::report::{fmt_rate, Report};
use haec_columnar::value::CmpOp;
use haec_energy::calibrate::KernelCosts;
use haec_exec::select::{select_metered, AdaptiveSelect, SelectKernel};
use std::time::{Duration, Instant};

fn throughput(data: &[i64], lit: i64, kernel: SelectKernel) -> f64 {
    let costs = KernelCosts::default_2013();
    // Warm + measure over enough repetitions for a stable clock reading.
    let mut total = Duration::ZERO;
    let mut reps = 0u32;
    let deadline = Instant::now() + Duration::from_millis(120);
    while Instant::now() < deadline {
        let (_, stats) = select_metered(data, CmpOp::Lt, lit, kernel, &costs);
        total += stats.wall;
        reps += 1;
    }
    data.len() as f64 * reps as f64 / total.as_secs_f64().max(1e-9)
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E5",
        "selection kernels vs selectivity (measured on this host)",
        "selectivity impacts branch prediction, forcing operators to switch implementations (§IV.B, [17])",
    );
    r.headers(["selectivity", "branching", "predicated", "bitwise", "adaptive picks"]);

    let n = 1_000_000usize;
    // Random permutation of 0..n so `v < lit` has exact selectivity and
    // is branch-unpredictable.
    let data: Vec<i64> = {
        let mut v: Vec<i64> = (0..n as i64).collect();
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for i in (1..v.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    };

    let mut mid_branching = 0.0;
    let mut mid_best_other = 0.0;
    for sel in [0.001, 0.01, 0.1, 0.3, 0.5, 0.9, 0.999] {
        let lit = (sel * n as f64) as i64;
        let tb = throughput(&data, lit, SelectKernel::Branching);
        let tp = throughput(&data, lit, SelectKernel::Predicated);
        let tw = throughput(&data, lit, SelectKernel::Bitwise);
        let mut adaptive = AdaptiveSelect::new(CmpOp::Lt, lit);
        for chunk in data.chunks(65_536).take(8) {
            adaptive.run(chunk);
        }
        r.row([
            format!("{sel:.3}"),
            fmt_rate(tb),
            fmt_rate(tp),
            fmt_rate(tw),
            format!("{}", adaptive.current_kernel()),
        ]);
        if (sel - 0.5).abs() < 1e-9 {
            mid_branching = tb;
            mid_best_other = tp.max(tw);
        }
    }
    r.note(format!(
        "at selectivity 0.5 the branch-free kernels beat branching by {:.2}x on this host",
        mid_best_other / mid_branching.max(1.0)
    ));
    r.note("the adaptive operator converges to the model-optimal kernel per selectivity regime");
    r
}
