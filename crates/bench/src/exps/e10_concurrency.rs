//! E10 — optimistic/multi-version concurrency vs locking for
//! main-memory workloads (§III, ref \[18\]).

use crate::report::{fmt_rate, Report};
use haec_sim::rng::SimRng;
use haec_txn::mvcc::{CcScheme, TxnManager};
use std::sync::Arc;
use std::time::Instant;

struct Outcome {
    committed: u64,
    aborted: u64,
    throughput: f64,
}

fn drive(scheme: CcScheme, threads: usize, keys: u64, zipf_theta: f64, txns_per_thread: u64) -> Outcome {
    let mgr = Arc::new(TxnManager::new(scheme));
    // Preload.
    for k in 0..keys {
        let mut t = mgr.begin();
        t.write(k as i64, 0);
        mgr.commit(t).expect("preload commits");
    }
    let preload_commits = mgr.committed();
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let mgr = Arc::clone(&mgr);
            std::thread::spawn(move || {
                let mut rng = SimRng::seed(42 + tid as u64);
                for _ in 0..txns_per_thread {
                    let mut txn = mgr.begin();
                    // Read-modify-write on 2 keys + 2 pure reads.
                    let mut ok = true;
                    for _ in 0..2 {
                        let k = rng.zipf(keys, zipf_theta) as i64;
                        match txn.read(&mgr, k) {
                            Some(v) => txn.write(k, v + 1),
                            None => {
                                if txn.is_doomed() {
                                    ok = false;
                                    break;
                                }
                                txn.write(k, 1);
                            }
                        }
                    }
                    for _ in 0..2 {
                        let k = rng.zipf(keys, zipf_theta) as i64;
                        let _ = txn.read(&mgr, k);
                        if txn.is_doomed() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let _ = mgr.commit(txn);
                    } else {
                        mgr.abort(txn);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    let wall = start.elapsed();
    let committed = mgr.committed() - preload_commits;
    Outcome { committed, aborted: mgr.aborted(), throughput: committed as f64 / wall.as_secs_f64() }
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E10",
        "concurrency control under contention (read-modify-write mix)",
        "optimistic, multi-version schemes avoid lock-based serialization for main-memory OLTP (§III, [18])",
    );
    r.headers(["scheme", "skew θ", "committed", "aborted", "throughput"]);

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let keys = 4096u64;
    let per_thread = 10_000u64;
    for theta in [0.0, 0.99] {
        for scheme in [CcScheme::SnapshotIsolation, CcScheme::SerializableOcc, CcScheme::TwoPhaseLocking] {
            let o = drive(scheme, threads, keys, theta, per_thread);
            r.row([
                format!("{scheme}"),
                format!("{theta:.2}"),
                format!("{}", o.committed),
                format!("{}", o.aborted),
                fmt_rate(o.throughput),
            ]);
        }
    }
    r.note(format!(
        "{threads} worker threads, {keys} keys, {per_thread} txns/thread, 2 RMW + 2 reads per txn"
    ));
    r.note(
        "skew raises aborts for every scheme; 2PL also aborts readers (no-wait), SI/OCC readers never block",
    );
    r
}
