//! E23 — declared sort keys: layout as a planner-costed choice
//! (§IV.B "energy efficiency by data reduction" applied to *order*, not
//! just encoding).
//!
//! The tentpole claim quantified here: sorting the main store on a
//! declared key at merge time turns zone maps into disjoint ranges and
//! the key column into a handful of RLE/delta runs, so selective
//! predicates resolve by binary search over run boundaries instead of
//! scanning — the planner picks that path from cost alone, and at low
//! selectivity it reads *strictly* fewer bytes (and burns fewer joules)
//! than the identical unsorted table, at identical answers.
//!
//! Results are also emitted as machine-readable `BENCH_e23.json` so CI
//! can archive the sweep.

use crate::report::{fmt_joules, Report};
use haec_columnar::value::CmpOp;
use haec_exec::agg::AggKind;
use haec_planner::access::AccessPath;
use haecdb::prelude::*;

const ROWS: i64 = 160 * 1024; // 2.5 main segments

/// One swept selectivity point.
struct Point {
    label: &'static str,
    sel: f64,
    sorted_path: String,
    sorted_bytes: u64,
    unsorted_bytes: u64,
    sorted_joules: f64,
    unsorted_joules: f64,
}

/// Builds the `orders` table with ids inserted in *shuffled* order (so
/// the sorting merge does real work), then merges once. `sorted`
/// declares `id` as the table's sort key.
fn fresh(sorted: bool) -> Database {
    let db = Database::new();
    let cols = [("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)];
    if sorted {
        db.create_table_sorted("orders", &cols, "id").unwrap();
    } else {
        db.create_table("orders", &cols).unwrap();
    }
    db.set_merge_threshold("orders", usize::MAX).unwrap();
    let mut ids: Vec<i64> = (0..ROWS).collect();
    ids.sort_by_key(|&i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as i64));
    for id in ids {
        db.insert(
            "orders",
            &Record::new().with("id", id).with("region", id % 8).with("amount", (id * 7) % 1000),
        )
        .unwrap();
    }
    db.merge("orders").unwrap();
    db
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E23",
        "declared sort key: binary-search access vs scan across selectivities (160K rows)",
        "sorted layout + disjoint zones let selective predicates read O(log) bytes; the planner picks the path from cost alone (§IV.B)",
    );
    r.headers([
        "selectivity",
        "path(sorted)",
        "read sorted",
        "read unsorted",
        "ratio",
        "E sorted",
        "E unsorted",
    ]);

    let sorted = fresh(true);
    let unsorted = fresh(false);

    let sweep: [(&str, f64, Query); 5] = [
        ("point", 1.0 / ROWS as f64, Query::scan("orders").filter("id", CmpOp::Eq, ROWS / 2)),
        ("0.1%", 0.001, Query::scan("orders").filter("id", CmpOp::Lt, ROWS / 1000)),
        ("1%", 0.01, Query::scan("orders").filter("id", CmpOp::Lt, ROWS / 100)),
        ("10%", 0.1, Query::scan("orders").filter("id", CmpOp::Lt, ROWS / 10)),
        ("full", 1.0, Query::scan("orders").filter("id", CmpOp::Ge, 0)),
    ];

    let mut points = Vec::new();
    for (label, sel, q) in sweep {
        let q = q.aggregate(AggKind::Sum, "amount");
        let s = sorted.execute(&q).unwrap();
        let u = unsorted.execute(&q).unwrap();
        // Identical answers regardless of physical order.
        assert_eq!(
            s.rows.row(0).unwrap()[0],
            u.rows.row(0).unwrap()[0],
            "answers must not depend on layout ({label})"
        );
        // Acceptance: at selectivity <= 1% the sorted layout reads
        // strictly fewer bytes and burns less modeled energy.
        if sel <= 0.01 {
            assert!(
                s.profile.dram_read < u.profile.dram_read,
                "{label}: sorted must read strictly fewer bytes ({} vs {})",
                s.profile.dram_read,
                u.profile.dram_read
            );
            assert!(s.energy.joules() < u.energy.joules(), "{label}: sorted must cost less energy");
        }
        let path = s.access_path.map_or_else(|| "-".to_string(), |p| p.to_string());
        points.push(Point {
            label,
            sel,
            sorted_path: path,
            sorted_bytes: s.profile.dram_read.bytes(),
            unsorted_bytes: u.profile.dram_read.bytes(),
            sorted_joules: s.energy.joules(),
            unsorted_joules: u.energy.joules(),
        });
        let p = points.last().unwrap();
        r.row([
            label.to_string(),
            p.sorted_path.clone(),
            format!("{} B", p.sorted_bytes),
            format!("{} B", p.unsorted_bytes),
            format!("{:.4}", p.sorted_bytes as f64 / p.unsorted_bytes as f64),
            fmt_joules(p.sorted_joules),
            fmt_joules(p.unsorted_joules),
        ]);
    }

    // Structural acceptance: the point lookup went through the
    // zone-binary-search path chosen by the cost model — no index
    // exists on either table, and nothing forced the path by hand.
    let point = sorted.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
    assert_eq!(
        point.access_path,
        Some(AccessPath::ZoneBinarySearch),
        "planner must choose binary search for point lookups on the sorted key"
    );
    assert_eq!(point.rows.rows(), 1);
    let ratio = points[0].sorted_bytes as f64 / points[0].unsorted_bytes as f64;
    r.note(format!(
        "point lookup reads {:.2}% of the unsorted bytes via {} (no index on either table)",
        ratio * 100.0,
        points[0].sorted_path
    ));
    r.note("string sort keys order by global dictionary code (first appearance), not collation");

    write_json(&points);
    r.note("machine-readable results written to BENCH_e23.json");
    r
}

/// Emits the sweep as `BENCH_e23.json` (hand-rolled: no JSON dependency).
fn write_json(points: &[Point]) {
    let mut s = String::from("{\n  \"experiment\": \"e23_sort_layout\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"selectivity\": \"{}\", \"sel\": {:.8}, \"sorted_path\": \"{}\", \
             \"sorted_read_bytes\": {}, \"unsorted_read_bytes\": {}, \
             \"sorted_joules\": {:.9}, \"unsorted_joules\": {:.9}}}{}\n",
            p.label,
            p.sel,
            p.sorted_path,
            p.sorted_bytes,
            p.unsorted_bytes,
            p.sorted_joules,
            p.unsorted_joules,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_e23.json", s) {
        eprintln!("warning: could not write BENCH_e23.json: {e}");
    }
}
