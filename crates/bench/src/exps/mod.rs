//! The experiment registry: one module per table/figure of the
//! reproduction; the `experiments` binary prints every report.

pub mod a01_ablations;
pub mod e01_scan_vs_index;
pub mod e02_energy_constraint;
pub mod e03_ship_compression;
pub mod e04_sync_scaling;
pub mod e05_adaptive_select;
pub mod e06_hybrid_placement;
pub mod e07_storage_tiers;
pub mod e08_planner_scale;
pub mod e09_need_to_know;
pub mod e10_concurrency;
pub mod e11_idle_power;
pub mod e12_elasticity;
pub mod e13_flexible_schema;
pub mod e14_robustness;
pub mod e15_reliability;
pub mod e16_compression;
pub mod e17_delta_merge;
pub mod e18_agg_pushdown;
pub mod e19_join_compressed;
pub mod e20_late_materialization;
pub mod e21_mvcc_snapshots;
pub mod e22_query_server;
pub mod e23_sort_layout;
pub mod e24_overload_degradation;

use crate::report::Report;

/// An experiment entry point.
pub type Runner = fn() -> Report;

/// All experiments as `(id, runner)` pairs, in order.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("e01", e01_scan_vs_index::run as Runner),
        ("e02", e02_energy_constraint::run),
        ("e03", e03_ship_compression::run),
        ("e04", e04_sync_scaling::run),
        ("e05", e05_adaptive_select::run),
        ("e06", e06_hybrid_placement::run),
        ("e07", e07_storage_tiers::run),
        ("e08", e08_planner_scale::run),
        ("e09", e09_need_to_know::run),
        ("e10", e10_concurrency::run),
        ("e11", e11_idle_power::run),
        ("e12", e12_elasticity::run),
        ("e13", e13_flexible_schema::run),
        ("e14", e14_robustness::run),
        ("e15", e15_reliability::run),
        ("e16", e16_compression::run),
        ("e17", e17_delta_merge::run),
        ("e18", e18_agg_pushdown::run),
        ("e19", e19_join_compressed::run),
        ("e20", e20_late_materialization::run),
        ("e21", e21_mvcc_snapshots::run),
        ("e22", e22_query_server::run),
        ("e23", e23_sort_layout::run),
        ("e24", e24_overload_degradation::run),
        ("a01", a01_ablations::run),
    ]
}
