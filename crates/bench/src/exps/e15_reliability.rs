//! E15 — multi-level reliability: REDO logs replicated, intermediates in
//! cheap memory (§III).

use crate::report::{fmt_dur, Report};
use haec_txn::log::{RedoLog, ReliabilityLevel};
use std::time::Duration;

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E15",
        "log durability levels: commit latency, throughput, NIC traffic",
        "convey per-fragment QoS to the platform: REDO replicated, intermediates volatile (§III)",
    );
    r.headers(["level", "group size", "commit latency", "txn/s (modeled)", "NIC bytes/txn"]);

    let txns = 10_000u64;
    let payload = 128usize;
    let mut lat_volatile = Duration::ZERO;
    let mut lat_replicated = Duration::ZERO;
    for level in [
        ReliabilityLevel::Volatile,
        ReliabilityLevel::Local,
        ReliabilityLevel::Replicated(1),
        ReliabilityLevel::Replicated(3),
    ] {
        for group in [1u64, 64] {
            let mut log = RedoLog::new();
            let mut total_latency = Duration::ZERO;
            let mut nic_bytes = 0u64;
            let mut flushes = 0u64;
            for i in 0..txns {
                log.append(i, vec![0u8; payload]);
                if (i + 1) % group == 0 {
                    let receipt = log.flush(level);
                    total_latency += receipt.latency;
                    nic_bytes += receipt.profile.nic_bytes.bytes();
                    flushes += 1;
                }
            }
            let per_commit = total_latency / flushes.max(1) as u32;
            // Modeled throughput: commits gated by flush latency.
            let tps = if total_latency.is_zero() {
                f64::INFINITY
            } else {
                txns as f64 / total_latency.as_secs_f64()
            };
            r.row([
                format!("{level}"),
                format!("{group}"),
                fmt_dur(per_commit),
                if tps.is_finite() { format!("{tps:.0}") } else { "∞ (memory-speed)".into() },
                format!("{}", nic_bytes / txns),
            ]);
            if group == 64 {
                match level {
                    ReliabilityLevel::Volatile => lat_volatile = per_commit,
                    ReliabilityLevel::Replicated(3) => lat_replicated = per_commit,
                    _ => {}
                }
            }
        }
    }
    assert!(lat_volatile < lat_replicated, "reliability must cost latency");
    r.note("volatile commits are free — exactly why recomputable intermediates belong in 'cheap' memory");
    r.note("replication multiplies NIC traffic by k and adds an RTT; group commit amortizes it 64x");
    r
}
