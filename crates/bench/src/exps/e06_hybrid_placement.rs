//! E6 — hybrid operators: init/finish on CPU, work() on the
//! co-processor (§III/§IV.B, refs \[9\]\[16\]).

use crate::report::Report;
use haec_energy::calibrate::KernelCosts;
use haec_energy::machine::{CoprocSpec, MachineSpec};
use haec_planner::placement::{choose_placement, PhasedOperator, Placement};

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E6",
        "operator placement: CPU vs GPU-class co-processor",
        "work() may move to the co-processor while init()/finish() stay on the CPU; pays only for compute-heavy operators and large inputs (§IV.B, [16])",
    );
    r.headers(["operator", "rows", "cpu", "hybrid", "decision"]);

    let machine = MachineSpec::commodity_2013().with_coproc(CoprocSpec::kepler_gpu());
    let costs = KernelCosts::default_2013();

    let mut scan_ever_offloaded = false;
    let mut complex_offloaded = false;
    for rows in [1_000_000u64, 50_000_000, 500_000_000, 2_000_000_000] {
        for (name, op) in [
            ("scan-agg (4 cyc/row)", PhasedOperator::scan_aggregate(rows)),
            ("mining (80 cyc/row)", PhasedOperator::complex_kernel(rows)),
        ] {
            let d = choose_placement(&machine, &costs, &op);
            let h = d.hybrid_cost.expect("machine has a coproc");
            r.row([
                name.to_string(),
                format!("{rows:.1e}"),
                format!(
                    "{:.1} ms / {:.1} J",
                    d.cpu_cost.time.as_secs_f64() * 1e3,
                    d.cpu_cost.energy.joules()
                ),
                format!("{:.1} ms / {:.1} J", h.time.as_secs_f64() * 1e3, h.energy.joules()),
                format!("{}", d.placement),
            ]);
            if name.starts_with("scan") && d.placement == Placement::HybridOffload {
                scan_ever_offloaded = true;
            }
            if name.starts_with("mining") && rows >= 500_000_000 && d.placement == Placement::HybridOffload {
                complex_offloaded = true;
            }
        }
    }
    assert!(!scan_ever_offloaded, "memory-bound scans must stay on the CPU (PCIe transfer dominates)");
    assert!(complex_offloaded, "compute-bound kernels must offload at scale");
    r.note("memory-bound scans never offload: PCIe transfer costs more than the scan itself (the known 2013 result)");
    r.note("compute-intensive operators (itemset mining, [8]) cross over to the device at large inputs");
    r
}
