//! E1 — "the faster a query is processed, the less energy is consumed;
//! index lookup instead of table scan" (§IV, ref \[12\]).

use crate::report::{fmt_joules, Report};
use haec_columnar::value::CmpOp;
use haec_energy::machine::MachineSpec;
use haec_planner::access::{choose_access, AccessPath};
use haec_planner::catalog::{ColumnMeta, TableMeta};
use haec_planner::cost::CostModel;

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E1",
        "index lookup vs table scan: time and energy",
        "faster plan = lower energy; optimizer picks index for selective predicates (§IV, [12])",
    );
    r.headers(["selectivity", "scan time", "scan energy", "index time", "index energy", "chosen"]);

    let rows = 10_000_000u64;
    let model = CostModel::new(MachineSpec::commodity_2013());
    let table = TableMeta {
        name: "orders".into(),
        rows,
        row_bytes: 8,
        columns: vec![ColumnMeta {
            name: "id".into(),
            ndv: rows,
            min: 0,
            max: rows as i64 - 1,
            indexed: true,
        }],
    };
    let mut crossover: Option<(f64, f64)> = None;
    let mut prev: Option<(f64, AccessPath)> = None;
    for exp in 0..=7 {
        let lit = 10i64.pow(exp);
        let d = choose_access(&model, &table, "id", CmpOp::Lt, lit);
        let ic = d.index_cost.expect("indexed column");
        r.row([
            format!("{:.1e}", d.selectivity),
            format!("{:.3} ms", d.scan_cost.time.as_secs_f64() * 1e3),
            fmt_joules(d.scan_cost.energy.joules()),
            format!("{:.3} ms", ic.time.as_secs_f64() * 1e3),
            fmt_joules(ic.energy.joules()),
            format!("{}", d.path),
        ]);
        // Both objectives must order the alternatives identically.
        let time_pref = ic.time < d.scan_cost.time;
        let energy_pref = ic.energy.joules() < d.scan_cost.energy.joules();
        assert_eq!(time_pref, energy_pref, "single-node time/energy orderings diverged");
        if let Some((ps, pp)) = prev {
            if pp == AccessPath::IndexLookup && d.path == AccessPath::FullScan {
                crossover = Some((ps, d.selectivity));
            }
        }
        prev = Some((d.selectivity, d.path));
    }
    if let Some((lo, hi)) = crossover {
        r.note(format!("crossover between selectivity {lo:.1e} and {hi:.1e}"));
    }
    r.note("time-optimal and energy-optimal access paths coincide on a single node (paper's premise)");
    r
}
