//! E14 — robustness: hide failures, preserve the intermediates of
//! long-running queries (§IV).

use crate::report::Report;
use haecdb::robust::{run_with_failures, RestartPolicy};

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E14",
        "failure recovery: full restart vs stage checkpointing",
        "intermediate results of long-running queries must be preserved and reused for restarts (§IV)",
    );
    r.headers(["unit failure prob", "policy", "failures", "executed units", "wasted", "waste %"]);

    // NOTE: full-restart completion probability is (1-p)^total_units —
    // beyond p ≈ 3/total the classical discipline effectively *never*
    // finishes (expected attempts explode as e^{p·units}). The sweep
    // stays below that wall and the wall itself is the finding.
    let stages = [2_000u64, 4_000, 3_000, 1_000];
    for p in [0.0, 0.0001, 0.0003, 0.0008] {
        let mut waste = [0.0f64; 2];
        for (i, policy) in [RestartPolicy::FullRestart, RestartPolicy::Checkpoint].iter().enumerate() {
            let rep = run_with_failures(&stages, p, *policy, 2013);
            waste[i] = rep.waste_fraction();
            r.row([
                format!("{p:.4}"),
                format!("{policy}"),
                format!("{}", rep.failures),
                format!("{}", rep.executed_units),
                format!("{}", rep.wasted_units()),
                format!("{:.1}%", rep.waste_fraction() * 100.0),
            ]);
        }
        if p >= 0.0003 {
            assert!(waste[1] < waste[0], "checkpointing must waste less at p={p}");
        }
    }
    r.note("at realistic failure rates, full restart re-executes whole pipelines; checkpoints bound waste to one stage");
    r.note("checkpointing costs a 5% overhead even when nothing fails — the trade-off for short queries");
    r.note("past p ≈ 3/total-units, full restart's completion probability collapses (e^{-p·units}): long queries NEED checkpoints");
    r
}
