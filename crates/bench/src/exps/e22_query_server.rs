//! E22 — the concurrent query server under load: 1→N closed-loop
//! clients fire scan/aggregate queries at one shared database through
//! [`haec_sched::qserver::QueryServer`], governor on (`EnergyCap`) vs
//! off (`RaceToIdle`), all over one persistent 8-worker pool.
//!
//! What the paper's Fig. 2 claims — "flexibly balance query response
//! time minimization and throughput maximization under a given energy
//! constraint" — here means: throughput, p50/p99 latency and
//! energy/query per client count and policy, plus **structural** gates
//! that hold on any machine (wall-clock ratios only assert where the
//! hardware can express them):
//!
//! * the pool creates **zero** threads after warmup — queries never pay
//!   thread creation (`threads_spawned` stays at the pool width, and on
//!   Linux the process thread count returns to its between-rounds
//!   baseline every round);
//! * the energy-cap governor's in-flight morsels never exceed the
//!   largest budget it ever set (the gate's high-water mark proves it);
//! * every answer is checked against its closed form — throughput is
//!   never bought with wrong answers;
//! * with ≥ 8 hardware threads, 8-client throughput is ≥ 3x the
//!   single-client run on the 8-way pool.
//!
//! Results are also emitted as machine-readable `BENCH_e22.json` so the
//! performance trajectory is tracked across PRs.

use crate::report::{fmt_dur, fmt_joules, fmt_rate, Report};
use haec_energy::machine::MachineSpec;
use haec_energy::units::Watts;
use haec_sched::governor::GovernorPolicy;
use haec_sched::qserver::{QueryServer, QueryServerConfig};
use haecdb::prelude::*;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

const WORKERS: usize = 8;
const ROWS: i64 = 96 * 1024;
const QUERIES_PER_CLIENT: usize = 8;
const CAP_WATTS: f64 = 30.0;

fn amount(i: i64) -> i64 {
    (i * 31 + 7) % 1_000
}

/// Client counts to sweep: 1→256 doubling, truncated by the
/// `E22_CLIENTS` environment variable (CI smoke runs small counts).
fn client_counts() -> Vec<usize> {
    let max = std::env::var("E22_CLIENTS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(256);
    [1usize, 2, 4, 8, 16, 32, 64, 128, 256].into_iter().filter(|&c| c <= max.max(1)).collect()
}

fn fresh() -> Arc<Database> {
    let pool = Arc::new(WorkerPool::new(WORKERS));
    let db = Database::with_machine_and_pool(MachineSpec::commodity_2013().with_cores(WORKERS), pool);
    db.create_table("events", &[("id", DataType::Int64), ("amount", DataType::Int64)]).unwrap();
    db.set_merge_threshold("events", usize::MAX).unwrap();
    for i in 0..ROWS {
        db.insert("events", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    db.merge("events").unwrap();
    Arc::new(db)
}

/// The two closed-form query shapes clients alternate between.
fn query(q: usize) -> Query {
    if q.is_multiple_of(2) {
        Query::scan("events").aggregate(AggKind::Sum, "amount")
    } else {
        Query::scan("events").filter("amount", CmpOp::Lt, 500).aggregate(AggKind::Count, "amount")
    }
}

fn check_answer(q: usize, got: f64) {
    if q.is_multiple_of(2) {
        let want: i64 = (0..ROWS).map(amount).sum();
        assert_eq!(got as i64, want, "SUM(amount) answered wrong under load");
    } else {
        let want = (0..ROWS).filter(|&i| amount(i) < 500).count();
        assert_eq!(got as usize, want, "filtered COUNT answered wrong under load");
    }
}

/// One measured round of the sweep.
struct Round {
    policy: GovernorPolicy,
    clients: usize,
    qps: f64,
    p50: Duration,
    p99: Duration,
    joules_per_query: f64,
    gate_high_water: usize,
    budget_high: usize,
}

/// Reads the process's current OS thread count (Linux only).
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|v| v.trim().parse().ok())
}

/// `clients` closed-loop threads each run [`QUERIES_PER_CLIENT`] queries
/// through a fresh server over `db`; returns the measured round.
fn run_round(db: &Arc<Database>, governor: GovernorPolicy, clients: usize) -> Round {
    let srv = QueryServer::new(
        Arc::clone(db),
        QueryServerConfig {
            governor,
            // Admission sized above the sweep: this round measures
            // scheduling, not rejection (admission is unit-tested).
            max_concurrent: 512,
            ..Default::default()
        },
    );
    let start = Barrier::new(clients + 1);
    let started = thread::scope(|scope| {
        for c in 0..clients {
            let srv = &srv;
            let start = &start;
            scope.spawn(move || {
                start.wait();
                for q in 0..QUERIES_PER_CLIENT {
                    let served = srv.execute(&query(c + q)).unwrap();
                    let got = served.result.rows.row(0).unwrap()[0].as_float().unwrap();
                    check_answer(c + q, got);
                }
            });
        }
        start.wait();
        // Leaving the scope joins every client, so `started.elapsed()`
        // after the scope covers barrier-release to last-client-done.
        std::time::Instant::now()
    });
    let elapsed = started.elapsed();
    let stats = srv.stats();
    let queries = clients * QUERIES_PER_CLIENT;
    assert_eq!(stats.completed, queries, "every query must complete");
    assert_eq!(stats.rejected, 0, "no rejections at this admission bound");
    if let GovernorPolicy::EnergyCap(_) = governor {
        assert!(stats.gate_high_water >= 1, "capped queries must flow through the gate");
        assert!(
            stats.gate_high_water <= stats.budget_high,
            "gate admitted {} concurrent morsels, budget never exceeded {}",
            stats.gate_high_water,
            stats.budget_high
        );
    }
    Round {
        policy: governor,
        clients,
        qps: queries as f64 / elapsed.as_secs_f64(),
        p50: stats.p50,
        p99: stats.p99,
        joules_per_query: stats.energy.joules() / queries as f64,
        gate_high_water: stats.gate_high_water,
        budget_high: stats.budget_high,
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E22",
        "Concurrent query server: 1\u{2192}N clients over one shared 8-worker pool",
        "a persistent worker pool + per-query governor grants scale whole-query concurrency \
         without per-query thread creation; EnergyCap bounds in-flight morsels fleet-wide",
    );
    r.headers(["policy", "clients", "queries", "qps", "p50", "p99", "E/query", "gate hw/budget"]);
    let db = fresh();

    // Warmup: exercise the pool once, then record the between-rounds
    // thread-count baselines (no client threads alive at this point).
    // The process-global pool is forced up front too — it initializes
    // lazily, and "zero threads after warmup" must cover it as well.
    {
        let _ = WorkerPool::global();
        let srv = QueryServer::new(Arc::clone(&db), QueryServerConfig::default());
        for q in 0..4 {
            let served = srv.execute(&query(q)).unwrap();
            check_answer(q, served.result.rows.row(0).unwrap()[0].as_float().unwrap());
        }
    }
    let spawned_baseline = db.pool().threads_spawned();
    let threads_baseline = os_threads();

    let policies = [GovernorPolicy::RaceToIdle, GovernorPolicy::EnergyCap(Watts::new(CAP_WATTS))];
    let mut rounds: Vec<Round> = Vec::new();
    for governor in policies {
        for clients in client_counts() {
            let round = run_round(&db, governor, clients);
            // Structural gate: the round created no pool threads, and
            // once its clients joined, the process thread count is back
            // at baseline — no hidden per-query threads anywhere.
            assert_eq!(db.pool().threads_spawned(), spawned_baseline, "pool spawned threads per query");
            if let Some(base) = threads_baseline {
                // Scoped clients have finished their work when the
                // scope returns, but their OS threads can still be in
                // teardown for a moment — wait for the count to settle
                // before asserting nothing persistent was created.
                let mut now = os_threads();
                for _ in 0..200 {
                    if now == Some(base) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(5));
                    now = os_threads();
                }
                assert_eq!(now, Some(base), "process thread count drifted across rounds");
            }
            rounds.push(round);
        }
    }

    for round in &rounds {
        r.row([
            format!("{}", round.policy),
            format!("{}", round.clients),
            format!("{}", round.clients * QUERIES_PER_CLIENT),
            fmt_rate(round.qps),
            fmt_dur(round.p50),
            fmt_dur(round.p99),
            fmt_joules(round.joules_per_query),
            format!("{}/{}", round.gate_high_water, round.budget_high),
        ]);
    }

    // Whole-query concurrency scaling: only assert the wall-clock ratio
    // where the hardware can express it (8 hardware threads for the
    // 8-way pool); the structural gates above hold regardless.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let qps_at = |policy: GovernorPolicy, clients: usize| {
        rounds.iter().find(|r| r.policy == policy && r.clients == clients).map(|r| r.qps)
    };
    if let (Some(one), Some(eight)) =
        (qps_at(GovernorPolicy::RaceToIdle, 1), qps_at(GovernorPolicy::RaceToIdle, 8))
    {
        let scaling = eight / one;
        if hw >= WORKERS {
            assert!(
                scaling >= 3.0,
                "8-client throughput only {scaling:.2}x single-client on an 8-way pool \
                 ({hw} hardware threads)"
            );
        }
        r.note(format!(
            "8-client vs 1-client throughput: {scaling:.2}x on {hw} hardware thread(s) — the \
             pool shares workers across queries instead of spawning per query{}",
            if hw >= WORKERS {
                " (>=3x gate asserted)"
            } else {
                " (ratio gate skipped: <8 hardware threads)"
            }
        ));
    }
    if let Some(capped) = rounds.iter().rfind(|r| matches!(r.policy, GovernorPolicy::EnergyCap(_))) {
        r.note(format!(
            "EnergyCap({CAP_WATTS:.0} W): gate high-water {} never exceeded its largest budget \
             {} — the fleet-wide morsel throttle holds, sized from per-query CostEstimates",
            capped.gate_high_water, capped.budget_high
        ));
    }
    r.note(format!(
        "pool threads spawned: {spawned_baseline} (= {WORKERS} workers), constant across the \
         whole sweep — zero thread creation per query after warmup"
    ));

    write_json(&rounds);
    r.note("machine-readable results written to BENCH_e22.json");
    r
}

/// Emits the sweep as `BENCH_e22.json` (hand-rolled: no JSON dependency).
fn write_json(rounds: &[Round]) {
    let mut s = String::from("{\n  \"experiment\": \"e22_query_server\",\n  \"rounds\": [\n");
    for (i, round) in rounds.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"clients\": {}, \"qps\": {:.2}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"joules_per_query\": {:.6}, \"gate_high_water\": {}, \
             \"budget_high\": {}}}{}\n",
            round.policy,
            round.clients,
            round.qps,
            round.p50.as_secs_f64() * 1e6,
            round.p99.as_secs_f64() * 1e6,
            round.joules_per_query,
            round.gate_high_water,
            round.budget_high,
            if i + 1 < rounds.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_e22.json", s) {
        eprintln!("warning: could not write BENCH_e22.json: {e}");
    }
}
