//! # haec-bench
//!
//! The benchmark harness of the `haecdb` reproduction of *Lehner,
//! "Energy-Efficient In-Memory Database Computing" (DATE 2013)*.
//!
//! The paper has no measured tables (it is an invited vision paper);
//! the [`exps`] module defines experiments E1–E16 that quantify its
//! figures and falsifiable claims. Each experiment lives in [`exps`] and
//! produces a [`report::Report`]; the `experiments` binary prints them:
//!
//! ```text
//! cargo run -p haec-bench --release --bin experiments
//! ```
//!
//! Criterion microbenchmarks over the hot kernels back the measured
//! columns: `cargo bench -p haec-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exps;
pub mod report;
