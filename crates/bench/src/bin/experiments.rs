//! Regenerates every table/figure of the reproduction.
//!
//! ```text
//! cargo run -p haec-bench --release --bin experiments          # all
//! cargo run -p haec-bench --release --bin experiments e03 e08  # subset
//! ```

use haec_bench::exps;
use haec_bench::report::time_it;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = exps::all();
    let selected: Vec<_> = if args.is_empty() {
        all
    } else {
        all.into_iter().filter(|(id, _)| args.iter().any(|a| a == id)).collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; known ids: e01..e16");
        std::process::exit(2);
    }
    println!("haecdb experiment harness — reproduction of Lehner, DATE 2013");
    println!("(energy figures come from the calibrated analytical model; see crates/energy)");
    println!();
    for (id, runner) in selected {
        let (report, took) = time_it(runner);
        println!("{report}");
        println!("   [{id} completed in {:.2} s]", took.as_secs_f64());
        println!();
    }
}
