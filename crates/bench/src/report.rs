//! Plain-text experiment reports: aligned tables with a title and notes,
//! printed by the `experiments` binary (see `cargo run -p haec-bench --bin experiments`).

use std::fmt;
use std::time::{Duration, Instant};

/// One experiment's output table.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id, e.g. "E3".
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper hook being quantified.
    pub claim: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form findings appended under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: &'static str, claim: &'static str) -> Self {
        Report { id, title, claim, headers: Vec::new(), rows: Vec::new(), notes: Vec::new() }
    }

    /// Sets the header row.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<I, S>(&mut self, row: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a finding note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "   claim: {}", self.claim)?;
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            write!(f, "   ")?;
            for (i, cell) in row.iter().enumerate() {
                let pad = widths[i].saturating_sub(cell.chars().count());
                write!(f, "{cell}{:pad$}  ", "")?;
            }
            writeln!(f)
        };
        if !self.headers.is_empty() {
            render(f, &self.headers)?;
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            render(f, &rule)?;
        }
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "   -> {note}")?;
        }
        Ok(())
    }
}

/// Times a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Formats joules in adaptive units.
pub fn fmt_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.2} J")
    } else if j >= 1e-3 {
        format!("{:.2} mJ", j * 1e3)
    } else {
        format!("{:.2} µJ", j * 1e6)
    }
}

/// Formats a rate with thousands grouping-ish precision.
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} /s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("E0", "demo", "claim text");
        r.headers(["a", "long-header"]);
        r.row(["1", "2"]);
        r.row(["300000", "4"]);
        r.note("done");
        let s = format!("{r}");
        assert!(s.contains("E0 — demo"));
        assert!(s.contains("claim text"));
        assert!(s.contains("long-header"));
        assert!(s.contains("-> done"));
        // Alignment: both data rows have the same rendered width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with("   1") || l.starts_with("   3")).collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_dur(Duration::from_micros(7)), "7.00 µs");
        assert_eq!(fmt_dur(Duration::from_nanos(9)), "9 ns");
        assert_eq!(fmt_joules(2.5), "2.50 J");
        assert_eq!(fmt_joules(0.0025), "2.50 mJ");
        assert_eq!(fmt_joules(2.5e-6), "2.50 µJ");
        assert_eq!(fmt_rate(2.5e9), "2.50 G/s");
        assert_eq!(fmt_rate(2.5e6), "2.50 M/s");
        assert_eq!(fmt_rate(2500.0), "2.50 k/s");
        assert_eq!(fmt_rate(25.0), "25.0 /s");
    }

    #[test]
    fn time_it_returns_value() {
        let (v, d) = time_it(|| 42);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }
}
