//! # haec-lint
//!
//! Source-level static analysis enforcing `haecdb` workspace invariants
//! that the compiler cannot see — run as `cargo run -p haec-lint` (CI's
//! `verify` job does, on every push). Each rule is a machine-checked
//! statement of a discipline the repo's correctness or energy-honesty
//! story depends on:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `safety-comment` | every `unsafe` token is annotated with a `// SAFETY:` (or `/// # Safety`) comment |
//! | `unsafe-in-shims` | the vendored `shims/` expose no `unsafe` at all |
//! | `no-thread-spawn` | no `thread::spawn`/`Builder`/`scope` outside the pool, the loom shim, and test harnesses |
//! | `no-available-parallelism` | hardware sizing happens once at engine construction, never per query |
//! | `meter-delta-billing` | query paths never bill per-query energy by subtracting meter totals (use `CostEstimate`) |
//! | `instant-in-energy` | energy accounting is work-based, not wall-clock (`Instant::now`) based |
//! | `sorted-claim` | sortedness claims (`sorted: true` / `sorted_by: Some(..)`) originate only in the merge build path, never ad hoc in query code |
//! | `failpoint-confined` | failpoint *arming* (`fail::cfg`/`seed`/`teardown`) is test-harness-only, and `fail_point!` instrumentation lives only in the designated engine crates |
//!
//! The scanner lexes each file just enough to **mask comments and
//! string literals** (so prose can mention forbidden tokens freely) and
//! to locate `#[cfg(test)]` regions (test code may spawn threads, read
//! meters, etc.). Findings carry `file:line` positions.
//!
//! Two escape hatches, both reviewable:
//! * the central [`ALLOWS`] table — a path-scoped exemption **with a
//!   written reason**, for sites that are legitimately special;
//! * an inline `// haec-lint: allow(<rule>)` comment on the offending
//!   line or the line above, for one-off cases.
//!
//! To add a rule: push a [`Rule`] into [`rules`], give it a kebab-case
//! id, scope it with `applies`, and seed `crates/lint/tests/selftest.rs`
//! with a fixture proving it fires.

#![forbid(unsafe_code)]
use std::path::{Path, PathBuf};

/// One diagnostic: a rule violated at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Kebab-case rule id.
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

// ---------------------------------------------------------------------
// Masking lexer
// ---------------------------------------------------------------------

/// Replaces the contents of comments and string/char literals with
/// spaces, preserving every newline and column position, so token
/// searches over the result only ever hit real code.
pub fn mask_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == 'r' || c == 'b' {
            // Possible raw/byte string: r"...", r#"..."#, b"...", br#"..."#.
            let mut j = i + 1;
            if c == 'b' && j < b.len() && b[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' && (hashes > 0 || b[i + 1] == '"' || (c == 'b' && b[i + 1] == 'r'))
            {
                // Emit the prefix, then mask until the closing quote
                // followed by `hashes` hashes.
                out.extend(std::iter::repeat_n(' ', j - i + 1));
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            out.extend(std::iter::repeat_n(' ', hashes + 1));
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
            } else {
                out.push(c);
                i += 1;
            }
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal vs lifetime: 'x' / '\n' are literals; 'a (no
            // closing quote right after) is a lifetime and stays as-is.
            if i + 2 < b.len() && b[i + 1] == '\\' {
                out.push(' ');
                i += 1;
                while i < b.len() && b[i] != '\'' {
                    out.push(' ');
                    i += 1;
                }
                if i < b.len() {
                    out.push(' ');
                    i += 1;
                }
            } else if i + 2 < b.len() && b[i + 2] == '\'' {
                out.push(' ');
                out.push(' ');
                out.push(' ');
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out.into_iter().collect()
}

// ---------------------------------------------------------------------
// #[cfg(test)] region detection
// ---------------------------------------------------------------------

/// 1-based inclusive line ranges covered by `#[cfg(test)]` items —
/// including conjunctive gates like `#[cfg(all(test, not(haec_loom)))]`
/// (modules, functions, single statements), located by brace matching
/// on the masked source. `#[cfg(not(test))]` is deliberately *not* a
/// test region.
pub fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    let chars: Vec<char> = masked.chars().collect();
    let mut regions = Vec::new();
    let text: String = masked.to_string();
    for pat in ["#[cfg(test)]", "#[cfg(all(test"] {
        collect_regions(&text, &chars, pat, &mut regions);
    }
    regions
}

fn collect_regions(text: &str, chars: &[char], pat: &str, regions: &mut Vec<(usize, usize)>) {
    let mut search = 0;
    while let Some(pos) = text[search..].find(pat) {
        let attr_at = search + pos;
        let start_line = line_of(chars, attr_at);
        // Find where the item ends: first `{` (then brace-match) or a
        // `;` before any `{` (attribute on a braceless item).
        let mut i = attr_at + pat.len();
        let mut end = None;
        while i < chars.len() {
            match chars[i] {
                ';' => {
                    end = Some(i);
                    break;
                }
                '{' => {
                    let mut depth = 1;
                    i += 1;
                    while i < chars.len() && depth > 0 {
                        match chars[i] {
                            '{' => depth += 1,
                            '}' => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                    end = Some(i.saturating_sub(1));
                    break;
                }
                _ => i += 1,
            }
        }
        let end_at = end.unwrap_or(chars.len().saturating_sub(1));
        regions.push((start_line, line_of(chars, end_at)));
        search = attr_at + 1;
    }
}

fn line_of(chars: &[char], pos: usize) -> usize {
    1 + chars[..pos.min(chars.len())].iter().filter(|&&c| c == '\n').count()
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// A lint rule: an id, a path scope, and a per-line check over the
/// masked source.
pub struct Rule {
    /// Kebab-case id, used in diagnostics, [`ALLOWS`], and inline
    /// `haec-lint: allow(...)` escapes.
    pub id: &'static str,
    /// Whether the rule examines this file at all.
    pub applies: fn(&str) -> bool,
    /// Whether findings inside `#[cfg(test)]` regions / test-harness
    /// paths are exempt.
    pub exempt_in_tests: bool,
    /// Scans one masked line (`raw` is the unmasked line, `above` the
    /// unmasked lines before it, for comment inspection). Returns a
    /// message for each violation.
    pub check: fn(masked_line: &str, raw: &str, above: &[String]) -> Option<String>,
}

/// A path-scoped exemption with a written reason. Keep reasons honest:
/// this table is the reviewable record of every place an invariant is
/// deliberately relaxed.
pub struct Allow {
    /// Rule being relaxed.
    pub rule: &'static str,
    /// Path prefix (repo-relative, `/` separators) the exemption covers.
    pub path_prefix: &'static str,
    /// Why this site is legitimately special.
    pub reason: &'static str,
}

/// The central allow-list. Every entry must say why.
pub const ALLOWS: &[Allow] = &[
    Allow {
        rule: "no-thread-spawn",
        path_prefix: "crates/bench/src/exps/",
        reason: "experiment harnesses drive concurrency scenarios directly (E10/E21/E22)",
    },
    Allow {
        rule: "no-available-parallelism",
        path_prefix: "crates/bench/",
        reason: "experiment harnesses size scenarios from the machine they measure",
    },
    Allow {
        rule: "meter-delta-billing",
        path_prefix: "crates/sched/src/server.rs",
        reason: "horizon-level aggregate of the discrete-event simulator, not per-query billing",
    },
    Allow {
        rule: "instant-in-energy",
        path_prefix: "crates/energy/src/calibrate.rs",
        reason: "the calibration harness is explicitly wall-clock based (it fits joules to seconds)",
    },
];

fn contains_token(haystack: &str, needle: &str) -> bool {
    // Word-boundary match: the char before/after must not be
    // identifier-ish, so `unsafe_code` never matches `unsafe`.
    let mut from = 0;
    while let Some(p) = haystack[from..].find(needle) {
        let at = from + p;
        let before_ok =
            at == 0 || !haystack[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Is this raw line part of a contiguous comment/attribute block (the
/// kind a `SAFETY:` annotation lives in)?
fn is_annotation_line(raw: &str) -> bool {
    let t = raw.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
}

fn has_safety_annotation(raw: &str, above: &[String]) -> bool {
    if raw.contains("SAFETY") || raw.contains("# Safety") {
        return true;
    }
    for prev in above.iter().rev() {
        if !is_annotation_line(prev) {
            return false;
        }
        if prev.contains("SAFETY") || prev.contains("# Safety") {
            return true;
        }
    }
    false
}

/// The rule set. Order is presentation order only.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            id: "safety-comment",
            applies: |_| true,
            exempt_in_tests: false,
            check: |masked, raw, above| {
                if contains_token(masked, "unsafe") && !has_safety_annotation(raw, above) {
                    Some("`unsafe` without a `// SAFETY:` comment explaining why it is sound".into())
                } else {
                    None
                }
            },
        },
        Rule {
            id: "unsafe-in-shims",
            applies: |p| p.starts_with("shims/"),
            exempt_in_tests: false,
            check: |masked, _, _| {
                if contains_token(masked, "unsafe") {
                    Some("vendored shims must not contain `unsafe` (they stand in for audited crates)".into())
                } else {
                    None
                }
            },
        },
        Rule {
            id: "no-thread-spawn",
            applies: |p| {
                p != "crates/exec/src/pool.rs"
                    && !p.starts_with("shims/loom/")
                    && !p.starts_with("shims/crossbeam/")
            },
            exempt_in_tests: true,
            check: |masked, _, _| {
                for tok in ["thread::spawn", "thread::Builder", "thread::scope"] {
                    if masked.contains(tok) {
                        return Some(format!(
                            "`{tok}` outside the worker pool: queries must run on the persistent \
                             pool (`exec::pool`), never on ad-hoc threads"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "no-available-parallelism",
            applies: |p| p != "crates/exec/src/pool.rs",
            exempt_in_tests: true,
            check: |masked, _, _| {
                if masked.contains("available_parallelism") {
                    Some(
                        "hardware parallelism is sized once when the engine's global pool is \
                         built, never re-queried per call site"
                            .into(),
                    )
                } else {
                    None
                }
            },
        },
        Rule {
            id: "meter-delta-billing",
            applies: |p| {
                p.starts_with("crates/core/src/")
                    || p.starts_with("crates/sched/src/")
                    || p.starts_with("crates/exec/src/")
                    || p.starts_with("crates/net/src/")
            },
            exempt_in_tests: true,
            check: |masked, _, _| {
                if masked.contains("grand_total") {
                    Some(
                        "per-query energy must be billed from `CostEstimate`, not by \
                         subtracting shared-meter totals (racy under concurrency)"
                            .into(),
                    )
                } else {
                    None
                }
            },
        },
        Rule {
            id: "sorted-claim",
            // The only places allowed to *assert* physical sortedness:
            // the sorting merge's build path (`Table::merge` →
            // `Segment::build`) and the planner's own unit-cost code
            // where `ZoneMapMeta`/`JoinSideCost` literals are test
            // vectors. Everything else must read the flag off a pinned
            // segment, never conjure it — a false claim silently turns
            // binary search into wrong answers.
            applies: |p| p != "crates/core/src/table.rs" && p != "crates/core/src/segment.rs",
            exempt_in_tests: true,
            check: |masked, _, _| {
                for tok in ["sorted: true", "sorted_by: Some("] {
                    if masked.contains(tok) {
                        return Some(format!(
                            "`{tok}` outside the merge build path: sortedness is established \
                             by `Table::merge` (stable sort, then `Segment::build` records the \
                             claim) and only *read* everywhere else"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            // Production code must never *arm* a failpoint: a stray
            // `fail::cfg` in the engine would make injected faults part
            // of normal operation instead of a test-harness input.
            id: "failpoint-confined",
            applies: |p| !p.starts_with("shims/fail/"),
            exempt_in_tests: true,
            check: |masked, _, _| {
                for tok in ["fail::cfg(", "fail::seed(", "fail::teardown(", "fail::remove("] {
                    if masked.contains(tok) {
                        return Some(format!(
                            "`{tok}..)` outside a test harness: failpoints are armed by tests \
                             (under `--cfg haec_fail`), never by production code"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            // ... and `fail_point!` instrumentation sites stay confined
            // to the engine crates that declare them (core, exec,
            // sched), so the instrumented surface — pinned by name in
            // `fault_injection.rs` — cannot silently sprawl.
            id: "failpoint-confined",
            applies: |p| {
                !p.starts_with("shims/fail/")
                    && !p.starts_with("crates/core/src/")
                    && !p.starts_with("crates/exec/src/")
                    && !p.starts_with("crates/sched/src/")
            },
            exempt_in_tests: true,
            check: |masked, _, _| {
                if masked.contains("fail_point!") {
                    Some(
                        "`fail_point!` outside the instrumented engine crates (core/exec/sched): \
                         new failpoint surfaces must be deliberate — add the crate here and pin \
                         the point's name in `fault_injection.rs`"
                            .into(),
                    )
                } else {
                    None
                }
            },
        },
        Rule {
            id: "instant-in-energy",
            applies: |p| p.starts_with("crates/energy/src/"),
            exempt_in_tests: true,
            check: |masked, _, _| {
                if masked.contains("Instant::now") {
                    Some(
                        "energy accounting is work-based (counters × unit costs); wall-clock \
                         reads do not belong in the energy crate"
                            .into(),
                    )
                } else {
                    None
                }
            },
        },
    ]
}

// ---------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------

/// Is the path a test/bench/example harness (exempt from runtime-only
/// rules)?
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

fn allowed(rule: &'static str, path: &str) -> bool {
    ALLOWS.iter().any(|a| a.rule == rule && path.starts_with(a.path_prefix))
}

fn inline_escape(rule: &str, raw: &str, above: &[String]) -> bool {
    let tag = format!("haec-lint: allow({rule})");
    raw.contains(&tag) || above.last().is_some_and(|l| l.contains(&tag))
}

/// Scans one file's source. `path` must be repo-relative with `/`
/// separators — rule scoping and the allow-list key off it.
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let masked = mask_source(src);
    let regions = test_regions(&masked);
    let raw_lines: Vec<String> = src.lines().map(str::to_string).collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let in_test_region = |line: usize| regions.iter().any(|&(lo, hi)| lo <= line && line <= hi);
    let test_path = is_test_path(path);

    let mut findings = Vec::new();
    for rule in rules() {
        if !(rule.applies)(path) || allowed(rule.id, path) {
            continue;
        }
        for (idx, masked_line) in masked_lines.iter().enumerate() {
            let line = idx + 1;
            if rule.exempt_in_tests && (test_path || in_test_region(line)) {
                continue;
            }
            let raw = raw_lines.get(idx).map(String::as_str).unwrap_or("");
            let above = &raw_lines[..idx];
            if inline_escape(rule.id, raw, above) {
                continue;
            }
            if let Some(message) = (rule.check)(masked_line, raw, above) {
                findings.push(Finding { rule: rule.id, path: path.to_string(), line, message });
            }
        }
    }
    findings
}

/// Walks the workspace at `root` and scans every tracked `.rs` file
/// (skipping `target/` and dot-directories). Returns all findings,
/// sorted by path and line.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(scan_source(&rel_str, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}
