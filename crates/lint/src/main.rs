//! `cargo run -p haec-lint` — scan the workspace and report invariant
//! violations with `file:line` positions. Exit code 1 when anything is
//! found, so CI's `verify` job fails the push.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The lint crate lives at `<root>/crates/lint`; the workspace root
    // is two levels up from its manifest.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate must live under <root>/crates/")
        .to_path_buf();
    match haec_lint::scan_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("haec-lint: clean ({} rules, 0 findings)", haec_lint::rules().len());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("haec-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("haec-lint: failed to scan workspace: {e}");
            ExitCode::FAILURE
        }
    }
}
