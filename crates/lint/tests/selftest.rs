//! Self-test for `haec-lint`: every rule must fire on a seeded
//! violation (a lint that can't fail proves nothing), every exemption
//! channel must work (test regions, allow-list, inline escapes,
//! masking), and the real tree must scan clean — which makes the lint
//! part of tier-1 `cargo test`, not just CI.

use haec_lint::{mask_source, scan_source, scan_workspace, test_regions};

fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = scan_source(path, src).into_iter().map(|f| f.rule).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

// -- masking ----------------------------------------------------------

#[test]
fn masking_blanks_comments_and_strings_preserving_lines() {
    let src = "let a = 1; // unsafe in a comment\nlet b = \"thread::spawn\";\n/* grand_total */ let c = 2;\n";
    let masked = mask_source(src);
    assert_eq!(masked.lines().count(), src.lines().count());
    assert!(!masked.contains("unsafe"));
    assert!(!masked.contains("thread::spawn"));
    assert!(!masked.contains("grand_total"));
    assert!(masked.contains("let a = 1;"));
    assert!(masked.contains("let c = 2;"));
}

#[test]
fn masking_handles_raw_strings_and_char_literals() {
    let src = "let r = r#\"unsafe { } \"# ; let c = 'x'; let lt: &'static str = s;\n";
    let masked = mask_source(src);
    assert!(!masked.contains("unsafe"));
    assert!(masked.contains("'static"), "lifetimes must survive masking");
}

#[test]
fn forbidden_tokens_inside_prose_never_fire() {
    let src = "//! Docs may say unsafe and thread::spawn and grand_total freely.\nfn f() {}\n";
    assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
}

// -- test region detection --------------------------------------------

#[test]
fn cfg_test_regions_are_located_by_brace_matching() {
    let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { let x = { 1 }; }\n}\nfn c() {}\n";
    let regions = test_regions(&mask_source(src));
    assert_eq!(regions, vec![(2, 5)]);
}

#[test]
fn conjunctive_cfg_test_gates_are_test_regions() {
    // Loom-excluded test modules are still test code.
    let src = "fn a() {}\n#[cfg(all(test, not(haec_loom)))]\nmod tests {\n    fn t() { std::thread::scope(|s| {}); }\n}\n";
    assert_eq!(test_regions(&mask_source(src)), vec![(2, 5)]);
    assert!(rules_fired("crates/sched/src/fake.rs", src).is_empty());
    // ...but a *negated* test gate is not.
    let not_test = "#[cfg(not(test))]\nfn serve() { std::thread::spawn(|| {}); }\n";
    let fired = rules_fired("crates/sched/src/fake.rs", not_test);
    assert!(fired.contains(&"no-thread-spawn"), "{fired:?}");
}

// -- safety-comment ----------------------------------------------------

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    let findings = scan_source("crates/exec/src/fake.rs", src);
    assert!(findings.iter().any(|f| f.rule == "safety-comment" && f.line == 2), "{findings:?}");
}

#[test]
fn unsafe_with_safety_comment_passes() {
    let src =
        "fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(rules_fired("crates/exec/src/fake.rs", src).is_empty());
}

#[test]
fn unsafe_fn_with_doc_safety_section_passes() {
    let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// `p` must be valid.\nunsafe fn f(p: *const u32) -> u32 {\n    // SAFETY: per this fn's contract.\n    unsafe { *p }\n}\n";
    assert!(rules_fired("crates/exec/src/fake.rs", src).is_empty());
}

#[test]
fn forbid_unsafe_code_attribute_is_not_an_unsafe_token() {
    let src = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n";
    assert!(rules_fired("crates/core/src/fake.rs", src).is_empty());
}

// -- unsafe-in-shims ---------------------------------------------------

#[test]
fn unsafe_in_a_shim_fires_even_with_safety_comment() {
    let src = "// SAFETY: totally fine, promise.\nunsafe fn f() {}\n";
    let fired = rules_fired("shims/rand/src/lib.rs", src);
    assert!(fired.contains(&"unsafe-in-shims"), "{fired:?}");
}

// -- no-thread-spawn ---------------------------------------------------

#[test]
fn stray_thread_spawn_fires() {
    let src = "pub fn serve() {\n    std::thread::spawn(|| {});\n}\n";
    let findings = scan_source("crates/sched/src/fake.rs", src);
    assert!(findings.iter().any(|f| f.rule == "no-thread-spawn" && f.line == 2), "{findings:?}");
}

#[test]
fn thread_builder_and_scope_also_fire() {
    for line in ["std::thread::Builder::new();", "std::thread::scope(|s| {});"] {
        let src = format!("pub fn serve() {{\n    {line}\n}}\n");
        let fired = rules_fired("crates/core/src/fake.rs", &src);
        assert!(fired.contains(&"no-thread-spawn"), "{line}: {fired:?}");
    }
}

#[test]
fn thread_spawn_in_cfg_test_is_exempt() {
    let src = "pub fn api() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
    assert!(rules_fired("crates/sched/src/fake.rs", src).is_empty());
}

#[test]
fn thread_spawn_in_test_harness_paths_is_exempt() {
    let src = "fn t() { std::thread::spawn(|| {}); }\n";
    assert!(rules_fired("crates/core/tests/fake.rs", src).is_empty());
    assert!(rules_fired("tests/fake.rs", src).is_empty());
}

#[test]
fn pool_and_loom_shim_may_spawn() {
    let src = "fn t() { std::thread::spawn(|| {}); }\n";
    assert!(rules_fired("crates/exec/src/pool.rs", src).is_empty());
    assert!(rules_fired("shims/loom/src/thread.rs", src).is_empty());
}

// -- no-available-parallelism -----------------------------------------

#[test]
fn per_call_available_parallelism_fires() {
    let src =
        "pub fn plan() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    let fired = rules_fired("crates/planner/src/fake.rs", src);
    assert!(fired.contains(&"no-available-parallelism"), "{fired:?}");
}

#[test]
fn pool_construction_may_size_from_hardware() {
    let src =
        "pub fn global() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    let fired = rules_fired("crates/exec/src/pool.rs", src);
    assert!(!fired.contains(&"no-available-parallelism"), "{fired:?}");
}

// -- meter-delta-billing ----------------------------------------------

#[test]
fn meter_delta_billing_in_query_path_fires() {
    let src =
        "pub fn bill(db: &Db) -> f64 {\n    let before = db.meter().grand_total();\n    before.joules()\n}\n";
    let findings = scan_source("crates/core/src/db.rs", src);
    assert!(findings.iter().any(|f| f.rule == "meter-delta-billing" && f.line == 2), "{findings:?}");
}

#[test]
fn meter_totals_outside_query_paths_are_fine() {
    let src = "pub fn report(m: &Meter) -> Joules { m.grand_total() }\n";
    assert!(rules_fired("crates/energy/src/meter.rs", src).is_empty());
}

// -- instant-in-energy -------------------------------------------------

#[test]
fn wall_clock_in_energy_crate_fires() {
    let src = "pub fn charge() {\n    let t = std::time::Instant::now();\n}\n";
    let fired = rules_fired("crates/energy/src/meter.rs", src);
    assert!(fired.contains(&"instant-in-energy"), "{fired:?}");
}

#[test]
fn calibration_harness_is_allow_listed() {
    let src = "pub fn calibrate() {\n    let t = std::time::Instant::now();\n}\n";
    assert!(rules_fired("crates/energy/src/calibrate.rs", src).is_empty());
}

// -- sorted-claim ------------------------------------------------------

#[test]
fn ad_hoc_sortedness_claim_fires() {
    let src = "pub fn plan() {\n    let z = ZoneMapMeta { rows: 1, min: 0, max: 9, sorted: true };\n}\n";
    let findings = scan_source("crates/planner/src/fake.rs", src);
    assert!(findings.iter().any(|f| f.rule == "sorted-claim" && f.line == 2), "{findings:?}");
    let src = "pub fn build() {\n    let s = Segment { sorted_by: Some(0) };\n}\n";
    let fired = rules_fired("crates/core/src/fake.rs", src);
    assert!(fired.contains(&"sorted-claim"), "{fired:?}");
}

#[test]
fn merge_build_path_may_claim_sortedness() {
    let src = "pub fn build() {\n    let s = Segment { sorted_by: Some(0) };\n}\n";
    assert!(rules_fired("crates/core/src/segment.rs", src).is_empty());
    assert!(rules_fired("crates/core/src/table.rs", src).is_empty());
}

#[test]
fn test_fixtures_may_claim_sortedness() {
    let src = "#[cfg(test)]\nmod tests {\n    fn z() { let z = ZoneMapMeta { rows: 1, min: 0, max: 9, sorted: true }; }\n}\n";
    assert!(rules_fired("crates/planner/src/fake.rs", src).is_empty());
    let harness = "fn z() { let z = ZoneMapMeta { rows: 1, min: 0, max: 9, sorted: true }; }\n";
    assert!(rules_fired("crates/core/tests/fake.rs", harness).is_empty());
}

// -- failpoint-confined ------------------------------------------------

#[test]
fn arming_a_failpoint_in_production_code_fires() {
    for line in ["fail::cfg(\"merge::publish\", \"panic\").unwrap();", "fail::seed(42);", "fail::teardown();"]
    {
        let src = format!("pub fn serve() {{\n    {line}\n}}\n");
        let findings = scan_source("crates/core/src/fake.rs", &src);
        assert!(
            findings.iter().any(|f| f.rule == "failpoint-confined" && f.line == 2),
            "{line}: {findings:?}"
        );
    }
}

#[test]
fn instrumentation_outside_engine_crates_fires() {
    let src = "pub fn plan() {\n    fail::fail_point!(\"planner::cost\");\n}\n";
    let fired = rules_fired("crates/planner/src/fake.rs", src);
    assert!(fired.contains(&"failpoint-confined"), "{fired:?}");
}

#[test]
fn instrumentation_in_engine_crates_passes() {
    let src = "pub fn merge() {\n    fail::fail_point!(\"merge::publish\");\n}\n";
    assert!(rules_fired("crates/core/src/fake.rs", src).is_empty());
    assert!(rules_fired("crates/exec/src/fake.rs", src).is_empty());
    assert!(rules_fired("crates/sched/src/fake.rs", src).is_empty());
}

#[test]
fn test_harnesses_may_arm_failpoints() {
    let src = "fn t() { fail::cfg(\"db::insert\", \"return(x)\").unwrap(); fail::teardown(); }\n";
    assert!(rules_fired("crates/core/tests/fault_injection.rs", src).is_empty());
    let in_region =
        "pub fn api() {}\n#[cfg(test)]\nmod tests {\n    fn t() { fail::cfg(\"a\", \"off\").unwrap(); }\n}\n";
    assert!(rules_fired("crates/core/src/fake.rs", in_region).is_empty());
}

#[test]
fn the_fail_shim_itself_is_exempt() {
    let src = "pub fn cfg(name: &str, spec: &str) {}\npub fn f() { fail_point!(\"x\"); }\n";
    assert!(rules_fired("shims/fail/src/lib.rs", src).is_empty());
}

// -- escapes -----------------------------------------------------------

#[test]
fn inline_escape_suppresses_one_site() {
    let with_escape =
        "pub fn f() {\n    // haec-lint: allow(no-thread-spawn)\n    std::thread::spawn(|| {});\n}\n";
    assert!(rules_fired("crates/core/src/fake.rs", with_escape).is_empty());
    let same_line = "pub fn f() {\n    std::thread::spawn(|| {}); // haec-lint: allow(no-thread-spawn)\n}\n";
    assert!(rules_fired("crates/core/src/fake.rs", same_line).is_empty());
}

#[test]
fn inline_escape_is_rule_specific() {
    let src = "pub fn f() {\n    // haec-lint: allow(safety-comment)\n    std::thread::spawn(|| {});\n}\n";
    let fired = rules_fired("crates/core/src/fake.rs", src);
    assert!(fired.contains(&"no-thread-spawn"), "escape for another rule must not apply: {fired:?}");
}

// -- the real tree -----------------------------------------------------

/// The workspace itself must be clean — this runs on every
/// `cargo test`, so a violation fails tier-1, not just the CI lint job.
#[test]
fn real_tree_has_zero_findings() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives under <root>/crates/")
        .to_path_buf();
    let findings = scan_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "workspace violates its own invariants:\n{}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
