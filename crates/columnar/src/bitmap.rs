//! Packed bitmaps used as selection vectors and null masks.
//!
//! The 64-lane word representation is also the engine's stand-in for
//! SIMD: predicate kernels produce/consume one `u64` of match bits at a
//! time, so combining predicates is a single AND per 64 rows.

use std::fmt;

/// A fixed-length bitmap over row positions.
///
/// ```
/// use haec_columnar::bitmap::Bitmap;
/// let mut b = Bitmap::zeros(10);
/// b.set(3, true);
/// b.set(7, true);
/// assert_eq!(b.count_ones(), 2);
/// assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// Creates an all-one bitmap of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.mask_tail();
        b
    }

    /// Builds a bitmap from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut b = Bitmap::zeros(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            if v {
                b.set(i, true);
            }
        }
        b
    }

    /// Builds a bitmap of `len` bits with ones at `positions`.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds.
    pub fn from_positions(len: usize, positions: &[usize]) -> Self {
        let mut b = Bitmap::zeros(len);
        for &p in positions {
            b.set(p, true);
        }
        b
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits (0 for an empty bitmap).
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Iterates over the positions of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            len: self.len,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Direct access to the packed words (the SIMD-style lane view).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets 64 bits at once from a lane mask; `word_idx` addresses bits
    /// `[64*word_idx, 64*word_idx+64)`. Bits beyond `len` are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `word_idx` is out of range.
    #[inline]
    pub fn set_word(&mut self, word_idx: usize, mask: u64) {
        self.words[word_idx] = mask;
        if word_idx == self.words.len() - 1 {
            self.mask_tail();
        }
    }

    /// Sets all bits in `[start, end)` to `value`; the fast path for
    /// run-length-encoded scans.
    ///
    /// # Panics
    ///
    /// Panics if `end > len` or `start > end`.
    pub fn set_range(&mut self, start: usize, end: usize, value: bool) {
        assert!(start <= end && end <= self.len, "range {start}..{end} out of bounds ({})", self.len);
        if start == end {
            return;
        }
        let (first_word, first_bit) = (start / 64, start % 64);
        let (last_word, last_bit) = ((end - 1) / 64, (end - 1) % 64);
        if first_word == last_word {
            let mask = (u64::MAX >> (63 - last_bit)) & (u64::MAX << first_bit);
            if value {
                self.words[first_word] |= mask;
            } else {
                self.words[first_word] &= !mask;
            }
            return;
        }
        let head = u64::MAX << first_bit;
        let tail = u64::MAX >> (63 - last_bit);
        if value {
            self.words[first_word] |= head;
            for w in &mut self.words[first_word + 1..last_word] {
                *w = u64::MAX;
            }
            self.words[last_word] |= tail;
        } else {
            self.words[first_word] &= !head;
            for w in &mut self.words[first_word + 1..last_word] {
                *w = 0;
            }
            self.words[last_word] &= !tail;
        }
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap({} of {} set)", self.count_ones(), self.len)
    }
}

/// Iterator over set-bit positions; see [`Bitmap::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    len: usize,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let pos = self.word_idx * 64 + bit;
                if pos < self.len {
                    return Some(pos);
                }
                continue;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 100);
        let o = Bitmap::ones(100);
        assert_eq!(o.count_ones(), 100);
    }

    #[test]
    fn ones_masks_tail() {
        let o = Bitmap::ones(65);
        assert_eq!(o.count_ones(), 65);
        assert_eq!(o.words().len(), 2);
        assert_eq!(o.words()[1], 1);
    }

    #[test]
    fn set_get_round_trip() {
        let mut b = Bitmap::zeros(130);
        for i in (0..130).step_by(3) {
            b.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        b.set(0, false);
        assert!(!b.get(0));
    }

    #[test]
    fn from_bools_and_positions() {
        let b = Bitmap::from_bools(&[true, false, true]);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        let p = Bitmap::from_positions(10, &[9, 1]);
        assert_eq!(p.iter_ones().collect::<Vec<_>>(), vec![1, 9]);
    }

    #[test]
    fn logical_ops() {
        let mut a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        let mut a2 = a.clone();
        a.and_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0]);
        a2.or_with(&b);
        assert_eq!(a2.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn negate_respects_length() {
        let mut b = Bitmap::from_bools(&[true, false, true]);
        b.negate();
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn selectivity() {
        let b = Bitmap::from_bools(&[true, false, false, false]);
        assert_eq!(b.selectivity(), 0.25);
        assert_eq!(Bitmap::zeros(0).selectivity(), 0.0);
        assert!(Bitmap::zeros(0).is_empty());
    }

    #[test]
    fn iter_ones_across_words() {
        let mut b = Bitmap::zeros(200);
        let positions = [0, 63, 64, 127, 128, 199];
        for &p in &positions {
            b.set(p, true);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), positions.to_vec());
    }

    #[test]
    fn set_word_masks_tail() {
        let mut b = Bitmap::zeros(70);
        b.set_word(1, u64::MAX);
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::zeros(5).get(5);
    }

    #[test]
    fn set_range_within_word() {
        let mut b = Bitmap::zeros(64);
        b.set_range(3, 7, true);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        b.set_range(4, 6, false);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 6]);
    }

    #[test]
    fn set_range_across_words() {
        let mut b = Bitmap::zeros(300);
        b.set_range(60, 260, true);
        assert_eq!(b.count_ones(), 200);
        assert!(!b.get(59));
        assert!(b.get(60));
        assert!(b.get(259));
        assert!(!b.get(260));
        b.set_range(0, 300, false);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn set_range_empty_is_noop() {
        let mut b = Bitmap::zeros(10);
        b.set_range(5, 5, true);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_range_out_of_bounds_panics() {
        Bitmap::zeros(5).set_range(0, 6, true);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = Bitmap::zeros(5);
        a.and_with(&Bitmap::zeros(6));
    }

    #[test]
    fn debug_format() {
        let b = Bitmap::from_bools(&[true, true, false]);
        assert_eq!(format!("{b:?}"), "Bitmap(2 of 3 set)");
    }
}
