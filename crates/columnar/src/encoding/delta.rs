//! Delta encoding: consecutive differences, zig-zag mapped and
//! bit-packed, with periodic checkpoints for seekable access.
//!
//! Ideal for monotonically increasing keys (timestamps, surrogate ids)
//! where deltas are tiny even though absolute values need 64 bits.

use crate::encoding::bitpack::BitPacked;

/// Checkpoint spacing: a decoded value is stored verbatim every this many
/// rows so `get` is O(CHECKPOINT_EVERY) instead of O(n).
pub const CHECKPOINT_EVERY: usize = 1024;

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A delta-encoded integer column.
///
/// ```
/// use haec_columnar::encoding::delta::DeltaInts;
/// let data: Vec<i64> = (0..100).map(|i| 1_600_000_000 + i * 30).collect();
/// let e = DeltaInts::encode(&data);
/// assert_eq!(e.decode(), data);
/// assert!(e.size_bytes() < 100 * 8 / 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaInts {
    /// Zig-zag deltas, bit-packed. deltas[i] = data[i+1] - data[i].
    deltas: BitPacked,
    /// data[k * CHECKPOINT_EVERY] for fast seeking; checkpoint 0 is the
    /// first value.
    checkpoints: Vec<i64>,
    len: usize,
}

impl DeltaInts {
    /// Encodes a slice.
    pub fn encode(data: &[i64]) -> Self {
        if data.is_empty() {
            return DeltaInts { deltas: BitPacked::pack(&[], 0), checkpoints: Vec::new(), len: 0 };
        }
        let mut zz = Vec::with_capacity(data.len() - 1);
        let mut checkpoints = Vec::with_capacity(data.len() / CHECKPOINT_EVERY + 1);
        for (i, w) in data.windows(2).enumerate() {
            let _ = i;
            zz.push(zigzag(w[1].wrapping_sub(w[0])));
        }
        for (i, &v) in data.iter().enumerate() {
            if i % CHECKPOINT_EVERY == 0 {
                checkpoints.push(v);
            }
        }
        let width = zz.iter().copied().max().map_or(0, BitPacked::width_for);
        DeltaInts { deltas: BitPacked::pack(&zz, width), checkpoints, len: data.len() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed delta width in bits.
    pub fn width(&self) -> u32 {
        self.deltas.width()
    }

    /// Random access to row `i`, reconstructing from the nearest
    /// checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> i64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        let ck = i / CHECKPOINT_EVERY;
        let mut v = self.checkpoints[ck];
        for d in ck * CHECKPOINT_EVERY..i {
            v = v.wrapping_add(unzigzag(self.deltas.get(d)));
        }
        v
    }

    /// Streaming sequential decode: yields each row's value without
    /// materializing the column. This is the path `EncodedInts::scan`
    /// uses, so predicate evaluation over delta-encoded data runs in
    /// O(1) extra space.
    pub fn iter(&self) -> DeltaIter<'_> {
        DeltaIter { col: self, next_row: 0, value: self.checkpoints.first().copied().unwrap_or(0) }
    }

    /// Decodes to a fresh vector (sequential, O(n)).
    pub fn decode(&self) -> Vec<i64> {
        self.iter().collect()
    }

    /// Minimum and maximum over all rows (streaming pass).
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut it = self.iter();
        let first = it.next()?;
        let (mut min, mut max) = (first, first);
        for v in it {
            min = min.min(v);
            max = max.max(v);
        }
        Some((min, max))
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.deltas.size_bytes() + self.checkpoints.len() * 8
    }
}

/// Streaming decoder over a [`DeltaInts`] column (see [`DeltaInts::iter`]).
#[derive(Clone, Debug)]
pub struct DeltaIter<'a> {
    col: &'a DeltaInts,
    next_row: usize,
    /// The value `next_row` decodes to (running prefix sum).
    value: i64,
}

impl Iterator for DeltaIter<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        if self.next_row >= self.col.len {
            return None;
        }
        let out = self.value;
        if self.next_row + 1 < self.col.len {
            self.value = self.value.wrapping_add(unzigzag(self.col.deltas.get(self.next_row)));
        }
        self.next_row += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.col.len - self.next_row;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for DeltaIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_iter_matches_decode() {
        for data in [
            vec![],
            vec![42],
            (0..3000).map(|i| i * 7 - 1000).collect::<Vec<i64>>(),
            vec![i64::MIN, i64::MAX, 0, -1],
        ] {
            let e = DeltaInts::encode(&data);
            assert_eq!(e.iter().collect::<Vec<_>>(), data);
            assert_eq!(e.iter().len(), data.len());
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [-5i64, -1, 0, 1, 5, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
    }

    #[test]
    fn zigzag_small_magnitudes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn round_trip_monotone() {
        let data: Vec<i64> = (0..5000).map(|i| 1_000_000 + i * 17).collect();
        let e = DeltaInts::encode(&data);
        assert_eq!(e.decode(), data);
    }

    #[test]
    fn round_trip_random_walk() {
        let mut v = 0i64;
        let data: Vec<i64> = (0..3000u64)
            .map(|i| {
                v = v.wrapping_add(((i.wrapping_mul(2_654_435_761)) % 2001) as i64 - 1000);
                v
            })
            .collect();
        let e = DeltaInts::encode(&data);
        assert_eq!(e.decode(), data);
    }

    #[test]
    fn get_uses_checkpoints() {
        let data: Vec<i64> = (0..(CHECKPOINT_EVERY as i64 * 3 + 7)).map(|i| i * 3).collect();
        let e = DeltaInts::encode(&data);
        for &i in &[
            0usize,
            1,
            CHECKPOINT_EVERY - 1,
            CHECKPOINT_EVERY,
            CHECKPOINT_EVERY + 1,
            2 * CHECKPOINT_EVERY + 500,
            data.len() - 1,
        ] {
            assert_eq!(e.get(i), data[i], "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_oob_panics() {
        DeltaInts::encode(&[1, 2]).get(2);
    }

    #[test]
    fn empty_and_singleton() {
        let e = DeltaInts::encode(&[]);
        assert!(e.is_empty());
        assert_eq!(e.decode(), Vec::<i64>::new());
        assert_eq!(e.min_max(), None);

        let e = DeltaInts::encode(&[99]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.decode(), vec![99]);
        assert_eq!(e.get(0), 99);
        assert_eq!(e.min_max(), Some((99, 99)));
    }

    #[test]
    fn min_max_non_monotone() {
        let e = DeltaInts::encode(&[10, 5, 30, -2, 7]);
        assert_eq!(e.min_max(), Some((-2, 30)));
    }

    #[test]
    fn compresses_timestamps_hard() {
        // Regular 1-second ticks: delta = 1 → 2 bits zig-zagged.
        let data: Vec<i64> = (0..100_000).map(|i| 1_600_000_000 + i).collect();
        let e = DeltaInts::encode(&data);
        let plain = data.len() * 8;
        assert!(e.size_bytes() * 10 < plain, "{} vs {}", e.size_bytes(), plain);
    }

    #[test]
    fn extreme_delta_values() {
        let data = vec![i64::MIN, i64::MAX, 0, i64::MIN / 2];
        let e = DeltaInts::encode(&data);
        assert_eq!(e.decode(), data);
    }
}
