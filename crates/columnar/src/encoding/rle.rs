//! Run-length encoding with run-skipping predicate evaluation.
//!
//! RLE is the encoding where "operate directly on compressed data" pays
//! off most: a comparison is evaluated once per *run* instead of once per
//! row, so sorted or low-cardinality columns scan orders of magnitude
//! faster — exactly the lightweight-compression argument of in-memory
//! column stores the paper builds on.

use crate::bitmap::Bitmap;
use crate::value::CmpOp;

/// One run: `len` copies of `value` starting at logical row `start`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// The repeated value.
    pub value: i64,
    /// First logical row of the run.
    pub start: usize,
    /// Number of repetitions.
    pub len: usize,
}

/// A run-length-encoded integer column.
///
/// ```
/// use haec_columnar::encoding::rle::RleInts;
/// let e = RleInts::encode(&[7, 7, 7, 2, 2, 9]);
/// assert_eq!(e.runs().len(), 3);
/// assert_eq!(e.decode(), vec![7, 7, 7, 2, 2, 9]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RleInts {
    runs: Vec<Run>,
    len: usize,
}

impl RleInts {
    /// Encodes a slice.
    pub fn encode(data: &[i64]) -> Self {
        let mut runs = Vec::new();
        let mut iter = data.iter();
        if let Some(&first) = iter.next() {
            let mut current = Run { value: first, start: 0, len: 1 };
            for (&v, i) in iter.zip(1..) {
                if v == current.value {
                    current.len += 1;
                } else {
                    runs.push(current);
                    current = Run { value: v, start: i, len: 1 };
                }
            }
            runs.push(current);
        }
        RleInts { runs, len: data.len() }
    }

    /// Number of logical rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The encoded runs.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Decodes to a fresh vector.
    pub fn decode(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len);
        for r in &self.runs {
            out.extend(std::iter::repeat_n(r.value, r.len));
        }
        out
    }

    /// Random access to row `i` by binary search over run starts.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> i64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        let idx = self.runs.partition_point(|r| r.start + r.len <= i);
        self.runs[idx].value
    }

    /// Evaluates `value op literal` over all rows into `out`, touching
    /// each *run* exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn scan(&self, op: CmpOp, literal: i64, out: &mut Bitmap) {
        assert_eq!(out.len(), self.len, "output bitmap length mismatch");
        for r in &self.runs {
            if op.eval(r.value, literal) {
                out.set_range(r.start, r.start + r.len, true);
            }
        }
    }

    /// Sum of all rows (aggregation on compressed data: one multiply per
    /// run).
    pub fn sum(&self) -> i64 {
        self.runs.iter().map(|r| r.value.wrapping_mul(r.len as i64)).sum()
    }

    /// Minimum and maximum over all rows.
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut it = self.runs.iter();
        let first = it.next()?;
        let mut min = first.value;
        let mut max = first.value;
        for r in it {
            min = min.min(r.value);
            max = max.max(r.value);
        }
        Some((min, max))
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.runs.len() * std::mem::size_of::<Run>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let data = vec![1, 1, 1, 2, 3, 3, 3, 3, -5];
        let e = RleInts::encode(&data);
        assert_eq!(e.decode(), data);
        assert_eq!(e.len(), 9);
        assert_eq!(e.runs().len(), 4);
    }

    #[test]
    fn empty_input() {
        let e = RleInts::encode(&[]);
        assert!(e.is_empty());
        assert_eq!(e.decode(), Vec::<i64>::new());
        assert_eq!(e.min_max(), None);
        assert_eq!(e.sum(), 0);
    }

    #[test]
    fn get_random_access() {
        let data = vec![4, 4, 9, 9, 9, 1];
        let e = RleInts::encode(&data);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(e.get(i), v, "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_oob_panics() {
        RleInts::encode(&[1]).get(1);
    }

    #[test]
    fn scan_matches_reference() {
        let data: Vec<i64> = (0..100).map(|i| (i / 10) % 4).collect();
        let e = RleInts::encode(&data);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let mut got = Bitmap::zeros(data.len());
            e.scan(op, 2, &mut got);
            let want = Bitmap::from_bools(&data.iter().map(|&v| op.eval(v, 2)).collect::<Vec<_>>());
            assert_eq!(got, want, "op {op}");
        }
    }

    #[test]
    fn sum_on_compressed() {
        let data = vec![5, 5, 5, -2, -2];
        let e = RleInts::encode(&data);
        assert_eq!(e.sum(), 11);
    }

    #[test]
    fn min_max() {
        let e = RleInts::encode(&[3, 3, -7, 12, 12]);
        assert_eq!(e.min_max(), Some((-7, 12)));
    }

    #[test]
    fn size_reflects_runs_not_rows() {
        let constant = vec![9i64; 10_000];
        let e = RleInts::encode(&constant);
        assert_eq!(e.runs().len(), 1);
        assert!(e.size_bytes() < 64);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scan_wrong_bitmap_len_panics() {
        let e = RleInts::encode(&[1, 2]);
        let mut out = Bitmap::zeros(3);
        e.scan(CmpOp::Eq, 1, &mut out);
    }
}
