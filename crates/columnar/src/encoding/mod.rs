//! Lightweight compression schemes and the scheme-agnostic
//! [`EncodedInts`] wrapper.
//!
//! The shipping-decision experiment (E3) and the compression
//! microbenchmark (E16) both work through this module: encode a column,
//! inspect the [`CompressionStats`], scan it without decompression.

pub mod bitpack;
pub mod delta;
pub mod foref;
pub mod rle;

use crate::bitmap::Bitmap;
use crate::value::CmpOp;
use delta::DeltaInts;
use foref::ForInts;
use rle::RleInts;
use std::fmt;

/// The available integer encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Uncompressed `Vec<i64>`.
    Plain,
    /// Run-length encoding.
    Rle,
    /// Frame-of-reference bit packing.
    For,
    /// Delta + zig-zag bit packing.
    Delta,
}

impl Scheme {
    /// All schemes in canonical order.
    pub const ALL: [Scheme; 4] = [Scheme::Plain, Scheme::Rle, Scheme::For, Scheme::Delta];
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::Plain => "plain",
            Scheme::Rle => "rle",
            Scheme::For => "for",
            Scheme::Delta => "delta",
        };
        f.write_str(s)
    }
}

/// An integer column in one of the supported encodings.
///
/// ```
/// use haec_columnar::encoding::{EncodedInts, Scheme};
/// let data = vec![5i64; 1000];
/// let e = EncodedInts::auto(&data);
/// assert_eq!(e.scheme(), Scheme::For); // constant data → width-0 FOR wins
/// assert_eq!(e.decode(), data);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum EncodedInts {
    /// Uncompressed.
    Plain(Vec<i64>),
    /// Run-length encoded.
    Rle(RleInts),
    /// Frame-of-reference encoded.
    For(ForInts),
    /// Delta encoded.
    Delta(DeltaInts),
}

impl EncodedInts {
    /// Encodes with an explicit scheme.
    pub fn encode(data: &[i64], scheme: Scheme) -> Self {
        match scheme {
            Scheme::Plain => EncodedInts::Plain(data.to_vec()),
            Scheme::Rle => EncodedInts::Rle(RleInts::encode(data)),
            Scheme::For => EncodedInts::For(ForInts::encode(data)),
            Scheme::Delta => EncodedInts::Delta(DeltaInts::encode(data)),
        }
    }

    /// Encodes with every scheme and keeps the smallest — the
    /// storage-layer default.
    pub fn auto(data: &[i64]) -> Self {
        Scheme::ALL
            .iter()
            .map(|&s| EncodedInts::encode(data, s))
            .min_by_key(EncodedInts::size_bytes)
            .expect("at least one scheme")
    }

    /// The scheme this column is encoded with.
    pub fn scheme(&self) -> Scheme {
        match self {
            EncodedInts::Plain(_) => Scheme::Plain,
            EncodedInts::Rle(_) => Scheme::Rle,
            EncodedInts::For(_) => Scheme::For,
            EncodedInts::Delta(_) => Scheme::Delta,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            EncodedInts::Plain(v) => v.len(),
            EncodedInts::Rle(e) => e.len(),
            EncodedInts::For(e) => e.len(),
            EncodedInts::Delta(e) => e.len(),
        }
    }

    /// Returns `true` if the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            EncodedInts::Plain(v) => v.len() * 8,
            EncodedInts::Rle(e) => e.size_bytes(),
            EncodedInts::For(e) => e.size_bytes(),
            EncodedInts::Delta(e) => e.size_bytes(),
        }
    }

    /// Random access to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> i64 {
        match self {
            EncodedInts::Plain(v) => v[i],
            EncodedInts::Rle(e) => e.get(i),
            EncodedInts::For(e) => e.get(i),
            EncodedInts::Delta(e) => e.get(i),
        }
    }

    /// Decodes to a fresh vector.
    pub fn decode(&self) -> Vec<i64> {
        match self {
            EncodedInts::Plain(v) => v.clone(),
            EncodedInts::Rle(e) => e.decode(),
            EncodedInts::For(e) => e.decode(),
            EncodedInts::Delta(e) => e.decode(),
        }
    }

    /// Streaming sequential decode: yields every row in order without
    /// materializing the column, whatever the scheme — runs expand on
    /// the fly, packed offsets unpack one at a time, deltas prefix-sum
    /// as they go. This is the iteration primitive segment-wise
    /// aggregation pushdown folds over.
    pub fn iter(&self) -> EncodedIter<'_> {
        let inner = match self {
            EncodedInts::Plain(v) => IterInner::Plain(v.iter()),
            EncodedInts::Rle(e) => IterInner::Rle { runs: e.runs().iter(), value: 0, run_left: 0 },
            EncodedInts::For(e) => IterInner::For { col: e, next: 0 },
            EncodedInts::Delta(e) => IterInner::Delta(e.iter()),
        };
        EncodedIter { inner, left: self.len() }
    }

    /// Evaluates `value op literal` into `out`. RLE and FOR run directly
    /// on compressed data; plain compares in place; delta decodes
    /// streamingly without materializing the column.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn scan(&self, op: CmpOp, literal: i64, out: &mut Bitmap) {
        assert_eq!(out.len(), self.len(), "output bitmap length mismatch");
        match self {
            EncodedInts::Plain(v) => {
                let mut word = 0u64;
                let mut word_idx = 0;
                for (i, &x) in v.iter().enumerate() {
                    word |= (op.eval(x, literal) as u64) << (i % 64);
                    if i % 64 == 63 {
                        out.set_word(word_idx, word);
                        word = 0;
                        word_idx += 1;
                    }
                }
                if v.len() % 64 != 0 {
                    out.set_word(word_idx, word);
                }
            }
            EncodedInts::Rle(e) => e.scan(op, literal, out),
            EncodedInts::For(e) => e.scan(op, literal, out),
            EncodedInts::Delta(e) => {
                // Streaming decode (DeltaIter): 64-row match words are
                // built on the fly, no intermediate Vec.
                let mut word = 0u64;
                let mut word_idx = 0;
                let mut i = 0usize;
                for x in e.iter() {
                    word |= (op.eval(x, literal) as u64) << (i % 64);
                    if i % 64 == 63 {
                        out.set_word(word_idx, word);
                        word = 0;
                        word_idx += 1;
                    }
                    i += 1;
                }
                if !i.is_multiple_of(64) {
                    out.set_word(word_idx, word);
                }
            }
        }
    }

    /// Minimum and maximum over all rows.
    pub fn min_max(&self) -> Option<(i64, i64)> {
        match self {
            EncodedInts::Plain(v) => {
                let min = v.iter().copied().min()?;
                let max = v.iter().copied().max()?;
                Some((min, max))
            }
            EncodedInts::Rle(e) => e.min_max(),
            EncodedInts::For(e) => e.min_max(),
            EncodedInts::Delta(e) => e.min_max(),
        }
    }

    /// Compression statistics relative to plain encoding.
    pub fn stats(&self) -> CompressionStats {
        let raw = self.len() * 8;
        CompressionStats { scheme: self.scheme(), raw_bytes: raw, encoded_bytes: self.size_bytes() }
    }

    /// Resolves `value op literal` to the contiguous matching row range
    /// `[lo, hi)` by binary search, assuming the rows are sorted
    /// ascending. RLE searches its run boundaries (the boundaries *are*
    /// the sorted-layout index); other schemes probe `get`. Each probe
    /// increments `probes` so callers can bill the O(log n) touch
    /// honestly instead of charging a full-column scan.
    ///
    /// Returns `None` for [`CmpOp::Ne`], whose matches are not
    /// contiguous. The caller must guarantee sortedness — the result is
    /// meaningless on unsorted data.
    pub fn sorted_range(&self, op: CmpOp, literal: i64, probes: &mut u64) -> Option<(usize, usize)> {
        let n = self.len();
        // First row with value >= literal (strict=false) or > literal
        // (strict=true).
        let bound = |after: bool, probes: &mut u64| -> usize {
            if let EncodedInts::Rle(e) = self {
                let runs = e.runs();
                let (mut lo, mut hi) = (0usize, runs.len());
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    *probes += 1;
                    let below = if after { runs[mid].value <= literal } else { runs[mid].value < literal };
                    if below {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo < runs.len() {
                    runs[lo].start
                } else {
                    n
                }
            } else {
                let (mut lo, mut hi) = (0usize, n);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    *probes += 1;
                    let v = self.get(mid);
                    let below = if after { v <= literal } else { v < literal };
                    if below {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        };
        match op {
            CmpOp::Eq => {
                let lo = bound(false, probes);
                let hi = bound(true, probes);
                Some((lo, hi))
            }
            CmpOp::Lt => Some((0, bound(false, probes))),
            CmpOp::Le => Some((0, bound(true, probes))),
            CmpOp::Gt => Some((bound(true, probes), n)),
            CmpOp::Ge => Some((bound(false, probes), n)),
            CmpOp::Ne => None,
        }
    }
}

/// Streaming decoder over any [`EncodedInts`] (see
/// [`EncodedInts::iter`]): O(1) extra space for every scheme.
#[derive(Clone, Debug)]
pub struct EncodedIter<'a> {
    inner: IterInner<'a>,
    /// Rows not yet yielded.
    left: usize,
}

#[derive(Clone, Debug)]
enum IterInner<'a> {
    Plain(std::slice::Iter<'a, i64>),
    Rle { runs: std::slice::Iter<'a, rle::Run>, value: i64, run_left: usize },
    For { col: &'a ForInts, next: usize },
    Delta(delta::DeltaIter<'a>),
}

impl Iterator for EncodedIter<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        match &mut self.inner {
            IterInner::Plain(it) => it.next().copied(),
            IterInner::Rle { runs, value, run_left } => {
                if *run_left == 0 {
                    let r = runs.next()?;
                    *value = r.value;
                    *run_left = r.len;
                }
                *run_left -= 1;
                Some(*value)
            }
            IterInner::For { col, next } => {
                let v = col.get(*next);
                *next += 1;
                Some(v)
            }
            IterInner::Delta(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left, Some(self.left))
    }
}

impl ExactSizeIterator for EncodedIter<'_> {}

/// Size accounting for one encoded column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressionStats {
    /// The encoding scheme.
    pub scheme: Scheme,
    /// Plain (8 B/row) size.
    pub raw_bytes: usize,
    /// Encoded size.
    pub encoded_bytes: usize,
}

impl CompressionStats {
    /// Compression ratio (>1 means smaller than plain).
    pub fn ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            if self.raw_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} bytes ({:.2}x)",
            self.scheme,
            self.raw_bytes,
            self.encoded_bytes,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datasets() -> Vec<(&'static str, Vec<i64>)> {
        vec![
            ("constant", vec![7; 777]),
            ("sorted-runs", (0..1000).map(|i| i / 50).collect()),
            ("narrow-range", (0..1000).map(|i| 10_000 + (i * 37) % 64).collect()),
            ("timestamps", (0..1000).map(|i| 1_600_000_000 + i * 30).collect()),
            ("random-ish", (0..1000).map(|i: i64| i.wrapping_mul(2_654_435_761) ^ (i << 13)).collect()),
            ("empty", vec![]),
            ("negatives", (-500..500).collect()),
        ]
    }

    #[test]
    fn all_schemes_round_trip_all_datasets() {
        for (name, data) in datasets() {
            for scheme in Scheme::ALL {
                let e = EncodedInts::encode(&data, scheme);
                assert_eq!(e.decode(), data, "{name} / {scheme}");
                assert_eq!(e.len(), data.len(), "{name} / {scheme}");
            }
        }
    }

    #[test]
    fn sorted_range_matches_linear_scan_on_sorted_data() {
        let sets: Vec<Vec<i64>> = vec![
            vec![],
            vec![5],
            (0..1000).map(|i| i / 50).collect(), // long duplicate runs
            (0..1000).collect(),                 // unique keys
            (-500..500).map(|i| i / 3).collect(),
        ];
        let ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        for data in &sets {
            for scheme in Scheme::ALL {
                let e = EncodedInts::encode(data, scheme);
                for &lit in &[-200i64, -1, 0, 3, 19, 999, 1_000_000] {
                    for op in ops {
                        let mut probes = 0u64;
                        let (lo, hi) = e.sorted_range(op, lit, &mut probes).expect("contiguous op");
                        // The range is exactly the rows a full scan matches.
                        let want: Vec<usize> = data
                            .iter()
                            .enumerate()
                            .filter(|&(_, &v)| op.eval(v, lit))
                            .map(|(i, _)| i)
                            .collect();
                        let got: Vec<usize> = (lo..hi).collect();
                        assert_eq!(got, want, "{:?} {op:?} {lit}", e.scheme());
                        // Honest O(log n) probe accounting.
                        if !data.is_empty() {
                            let log = (data.len() as f64).log2().ceil() as u64 + 1;
                            assert!(probes <= 2 * log + 2, "{probes} probes for n={}", data.len());
                        }
                    }
                }
                let mut probes = 0u64;
                assert_eq!(e.sorted_range(CmpOp::Ne, 3, &mut probes), None);
            }
        }
    }

    #[test]
    fn auto_picks_smallest() {
        for (name, data) in datasets() {
            let auto = EncodedInts::auto(&data);
            for scheme in Scheme::ALL {
                let e = EncodedInts::encode(&data, scheme);
                assert!(
                    auto.size_bytes() <= e.size_bytes(),
                    "{name}: auto({}) {} > {scheme} {}",
                    auto.scheme(),
                    auto.size_bytes(),
                    e.size_bytes()
                );
            }
        }
    }

    #[test]
    fn auto_prefers_expected_schemes() {
        // Constant data: width-0 frame-of-reference stores just the
        // reference (8 bytes), beating even a single RLE run.
        assert_eq!(EncodedInts::auto(&vec![3i64; 1000]).scheme(), Scheme::For);
        // Large-magnitude ticking timestamps: only delta gets them small.
        let ts: Vec<i64> = (0..10_000).map(|i| 1_600_000_000_000 + i).collect();
        assert_eq!(EncodedInts::auto(&ts).scheme(), Scheme::Delta);
        // Low-cardinality long runs with large spread: RLE wins.
        let runs: Vec<i64> = (0..10_000).map(|i| ((i / 1000) * 1_000_000_007) % 97).collect();
        assert_eq!(EncodedInts::auto(&runs).scheme(), Scheme::Rle);
    }

    #[test]
    fn scan_agrees_across_schemes() {
        for (name, data) in datasets() {
            if data.is_empty() {
                continue;
            }
            let lit = data[data.len() / 2];
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                let reference =
                    Bitmap::from_bools(&data.iter().map(|&v| op.eval(v, lit)).collect::<Vec<_>>());
                for scheme in Scheme::ALL {
                    let e = EncodedInts::encode(&data, scheme);
                    let mut got = Bitmap::zeros(data.len());
                    e.scan(op, lit, &mut got);
                    assert_eq!(got, reference, "{name} / {scheme} / {op}");
                }
            }
        }
    }

    #[test]
    fn streaming_iter_matches_decode_across_schemes() {
        for (name, data) in datasets() {
            for scheme in Scheme::ALL {
                let e = EncodedInts::encode(&data, scheme);
                assert_eq!(e.iter().collect::<Vec<_>>(), data, "{name} / {scheme}");
                assert_eq!(e.iter().len(), data.len(), "{name} / {scheme} exact size");
                // Partial consumption keeps the size hint honest.
                let mut it = e.iter();
                let taken = data.len() / 3;
                for _ in 0..taken {
                    it.next();
                }
                assert_eq!(it.len(), data.len() - taken, "{name} / {scheme} after partial");
            }
        }
    }

    #[test]
    fn min_max_agrees() {
        for (name, data) in datasets() {
            let want = data.iter().copied().min().zip(data.iter().copied().max());
            for scheme in Scheme::ALL {
                let e = EncodedInts::encode(&data, scheme);
                assert_eq!(e.min_max(), want, "{name} / {scheme}");
            }
        }
    }

    #[test]
    fn get_agrees() {
        for (name, data) in datasets() {
            for scheme in Scheme::ALL {
                let e = EncodedInts::encode(&data, scheme);
                for i in (0..data.len()).step_by(97.max(data.len() / 13).max(1)) {
                    assert_eq!(e.get(i), data[i], "{name} / {scheme} / row {i}");
                }
            }
        }
    }

    #[test]
    fn stats_ratio() {
        let e = EncodedInts::encode(&vec![1i64; 1000], Scheme::Rle);
        let s = e.stats();
        assert!(s.ratio() > 100.0);
        assert!(format!("{s}").contains("rle"));
        let empty = EncodedInts::encode(&[], Scheme::Plain).stats();
        assert_eq!(empty.ratio(), 1.0);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(format!("{}", Scheme::For), "for");
    }
}
