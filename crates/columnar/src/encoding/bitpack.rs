//! Fixed-width bit packing of `u64` values — the primitive under
//! frame-of-reference and delta encoding.

/// A packed array of `len` values, each `width` bits wide.
///
/// `width == 0` encodes the all-zeros array in zero data words, the
/// common case for constant columns after frame-of-reference shifting.
///
/// ```
/// use haec_columnar::encoding::bitpack::BitPacked;
/// let p = BitPacked::pack(&[3, 0, 7, 5], 3);
/// assert_eq!(p.get(2), 7);
/// assert_eq!(p.unpack(), vec![3, 0, 7, 5]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitPacked {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

impl BitPacked {
    /// Packs `values` at `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`, or if any value needs more than `width`
    /// bits.
    pub fn pack(values: &[u64], width: u32) -> Self {
        assert!(width <= 64, "width must be <= 64");
        if width == 0 {
            assert!(values.iter().all(|&v| v == 0), "width 0 requires all-zero values");
            return BitPacked { words: Vec::new(), width, len: values.len() };
        }
        if width < 64 {
            let limit = 1u64 << width;
            assert!(values.iter().all(|&v| v < limit), "value does not fit in {width} bits");
        }
        let total_bits = values.len() * width as usize;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            let bit = i * width as usize;
            let (w, off) = (bit / 64, (bit % 64) as u32);
            words[w] |= v << off;
            let spill = off + width;
            if spill > 64 {
                words[w + 1] |= v >> (64 - off);
            }
        }
        BitPacked { words, width, len: values.len() }
    }

    /// The minimal width able to represent `max`.
    pub fn width_for(max: u64) -> u32 {
        64 - max.leading_zeros()
    }

    /// Number of packed values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no values are packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured bit width.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Random access to value `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        if self.width == 0 {
            return 0;
        }
        let width = self.width;
        let bit = i * width as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let mut v = self.words[w] >> off;
        let spill = off + width;
        if spill > 64 {
            v |= self.words[w + 1] << (64 - off);
        }
        v & mask
    }

    /// Unpacks everything into a fresh vector.
    pub fn unpack(&self) -> Vec<u64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Payload size in bytes (words only; excludes the struct header).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        for width in [1u32, 3, 7, 8, 13, 31, 33, 63, 64] {
            let max = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let values: Vec<u64> =
                (0..200u64).map(|i| (i * 2_654_435_761) % (max.saturating_add(1)).max(1)).collect();
            let values: Vec<u64> = values.iter().map(|&v| if width == 64 { v } else { v & max }).collect();
            let p = BitPacked::pack(&values, width);
            assert_eq!(p.unpack(), values, "width {width}");
            assert_eq!(p.len(), 200);
        }
    }

    #[test]
    fn width_zero_all_zeros() {
        let p = BitPacked::pack(&[0, 0, 0], 0);
        assert_eq!(p.size_bytes(), 0);
        assert_eq!(p.unpack(), vec![0, 0, 0]);
        assert_eq!(p.get(1), 0);
    }

    #[test]
    #[should_panic(expected = "width 0 requires all-zero")]
    fn width_zero_nonzero_panics() {
        let _ = BitPacked::pack(&[1], 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_panics() {
        let _ = BitPacked::pack(&[8], 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitPacked::pack(&[1], 1).get(1);
    }

    #[test]
    fn width_for_values() {
        assert_eq!(BitPacked::width_for(0), 0);
        assert_eq!(BitPacked::width_for(1), 1);
        assert_eq!(BitPacked::width_for(7), 3);
        assert_eq!(BitPacked::width_for(8), 4);
        assert_eq!(BitPacked::width_for(u64::MAX), 64);
    }

    #[test]
    fn compression_is_real() {
        let values: Vec<u64> = (0..1000).map(|i| i % 16).collect();
        let p = BitPacked::pack(&values, 4);
        // 4 bits * 1000 = 500 bytes, rounded up to whole u64 words.
        assert_eq!(p.size_bytes(), 504);
    }

    #[test]
    fn cross_word_boundary() {
        // width 13: values straddle u64 boundaries regularly.
        let values: Vec<u64> = (0..64).map(|i| (i * 97) % 8192).collect();
        let p = BitPacked::pack(&values, 13);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(p.get(i), v, "index {i}");
        }
    }

    #[test]
    fn empty_pack() {
        let p = BitPacked::pack(&[], 5);
        assert!(p.is_empty());
        assert_eq!(p.unpack(), Vec::<u64>::new());
    }
}
