//! Frame-of-reference (FOR) encoding: values stored as bit-packed
//! unsigned offsets from the column minimum.
//!
//! FOR keeps random access O(1) and allows predicates to be rewritten
//! into the packed domain, so a scan never reconstructs the original
//! values — comparisons happen on the raw packed offsets.

use crate::bitmap::Bitmap;
use crate::encoding::bitpack::BitPacked;
use crate::value::CmpOp;

/// A frame-of-reference encoded integer column.
///
/// ```
/// use haec_columnar::encoding::foref::ForInts;
/// let e = ForInts::encode(&[1000, 1003, 1001, 1007]);
/// assert_eq!(e.get(3), 1007);
/// assert!(e.size_bytes() < 4 * 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForInts {
    reference: i64,
    packed: BitPacked,
}

impl ForInts {
    /// Encodes a slice.
    pub fn encode(data: &[i64]) -> Self {
        let reference = data.iter().copied().min().unwrap_or(0);
        let offsets: Vec<u64> = data.iter().map(|&v| v.wrapping_sub(reference) as u64).collect();
        let width = offsets.iter().copied().max().map_or(0, BitPacked::width_for);
        ForInts { reference, packed: BitPacked::pack(&offsets, width) }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Returns `true` if the column is empty.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// The frame reference (column minimum).
    pub fn reference(&self) -> i64 {
        self.reference
    }

    /// The packed offset width in bits.
    pub fn width(&self) -> u32 {
        self.packed.width()
    }

    /// Random access to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        self.reference.wrapping_add(self.packed.get(i) as i64)
    }

    /// Decodes to a fresh vector.
    pub fn decode(&self) -> Vec<i64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Evaluates `value op literal` into `out` without leaving the packed
    /// domain: the literal is translated once, and out-of-frame literals
    /// short-circuit to constant-true/false range fills.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn scan(&self, op: CmpOp, literal: i64, out: &mut Bitmap) {
        assert_eq!(out.len(), self.len(), "output bitmap length mismatch");
        let n = self.len();
        if n == 0 {
            return;
        }
        let max_offset = if self.width() == 64 { u64::MAX } else { (1u64 << self.width()) - 1 };
        // Translate literal into the offset domain, saturating.
        let lit_off = literal.wrapping_sub(self.reference);
        let below = literal < self.reference || (literal as i128 - self.reference as i128) < 0;
        let above = (literal as i128 - self.reference as i128) > max_offset as i128;

        // Short circuits: literal outside the frame.
        let all = |out: &mut Bitmap, v: bool| out.set_range(0, n, v);
        match op {
            CmpOp::Eq if below || above => return all(out, false),
            CmpOp::Ne if below || above => return all(out, true),
            CmpOp::Lt | CmpOp::Le if below => return all(out, false),
            CmpOp::Lt | CmpOp::Le if above => return all(out, true),
            CmpOp::Gt | CmpOp::Ge if below => return all(out, true),
            CmpOp::Gt | CmpOp::Ge if above => return all(out, false),
            _ => {}
        }
        let lit_off = lit_off as u64;
        // 64-lane evaluation over packed offsets.
        let mut word = 0u64;
        let mut word_idx = 0;
        for i in 0..n {
            let hit = op.eval(self.packed.get(i), lit_off);
            word |= (hit as u64) << (i % 64);
            if i % 64 == 63 {
                out.set_word(word_idx, word);
                word = 0;
                word_idx += 1;
            }
        }
        if !n.is_multiple_of(64) {
            out.set_word(word_idx, word);
        }
    }

    /// Minimum and maximum over all rows (min is the reference by
    /// construction; max needs one pass over packed offsets).
    pub fn min_max(&self) -> Option<(i64, i64)> {
        if self.is_empty() {
            return None;
        }
        let max_off = (0..self.len()).map(|i| self.packed.get(i)).max().unwrap_or(0);
        Some((self.reference, self.reference.wrapping_add(max_off as i64)))
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.packed.size_bytes() + std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = vec![100, 107, 101, 100, 163];
        let e = ForInts::encode(&data);
        assert_eq!(e.decode(), data);
        assert_eq!(e.reference(), 100);
        assert_eq!(e.width(), 6); // max offset 63
    }

    #[test]
    fn negative_values() {
        let data = vec![-50, -10, -50, 0, 13];
        let e = ForInts::encode(&data);
        assert_eq!(e.decode(), data);
        assert_eq!(e.reference(), -50);
    }

    #[test]
    fn constant_column_is_free() {
        let data = vec![42i64; 5000];
        let e = ForInts::encode(&data);
        assert_eq!(e.width(), 0);
        assert!(e.size_bytes() <= 16);
        assert_eq!(e.get(4999), 42);
    }

    #[test]
    fn empty() {
        let e = ForInts::encode(&[]);
        assert!(e.is_empty());
        assert_eq!(e.min_max(), None);
        assert_eq!(e.decode(), Vec::<i64>::new());
    }

    #[test]
    fn scan_matches_reference_impl() {
        let data: Vec<i64> = (0..257).map(|i| 1000 + (i * 37) % 91).collect();
        let e = ForInts::encode(&data);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for lit in [999, 1000, 1045, 1090, 2000] {
                let mut got = Bitmap::zeros(data.len());
                e.scan(op, lit, &mut got);
                let want = Bitmap::from_bools(&data.iter().map(|&v| op.eval(v, lit)).collect::<Vec<_>>());
                assert_eq!(got, want, "op {op} lit {lit}");
            }
        }
    }

    #[test]
    fn scan_out_of_frame_short_circuits() {
        let data = vec![10, 11, 12];
        let e = ForInts::encode(&data);
        let mut out = Bitmap::zeros(3);
        e.scan(CmpOp::Lt, 5, &mut out);
        assert_eq!(out.count_ones(), 0);
        let mut out = Bitmap::zeros(3);
        e.scan(CmpOp::Lt, 100, &mut out);
        assert_eq!(out.count_ones(), 3);
        let mut out = Bitmap::zeros(3);
        e.scan(CmpOp::Eq, 100, &mut out);
        assert_eq!(out.count_ones(), 0);
        let mut out = Bitmap::zeros(3);
        e.scan(CmpOp::Ne, 5, &mut out);
        assert_eq!(out.count_ones(), 3);
        let mut out = Bitmap::zeros(3);
        e.scan(CmpOp::Ge, 5, &mut out);
        assert_eq!(out.count_ones(), 3);
        let mut out = Bitmap::zeros(3);
        e.scan(CmpOp::Gt, 100, &mut out);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn min_max() {
        let e = ForInts::encode(&[5, -3, 19, 2]);
        assert_eq!(e.min_max(), Some((-3, 19)));
    }

    #[test]
    fn compression_on_narrow_range() {
        let data: Vec<i64> = (0..10_000).map(|i| 1_000_000 + i % 100).collect();
        let e = ForInts::encode(&data);
        // 7 bits per value ≈ 8750 bytes vs 80 000 plain.
        assert!(e.size_bytes() < 10_000, "{}", e.size_bytes());
    }
}
