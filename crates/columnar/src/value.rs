//! Logical data types and dynamically-typed values.

use std::fmt;

/// The logical type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string, dictionary-encoded in storage.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A single dynamically-typed value, used at API boundaries (ingestion,
/// point lookups, literals); the engine's hot paths stay fully typed.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit signed integer value.
    Int(i64),
    /// 64-bit float value.
    Float(f64),
    /// String value.
    Str(String),
    /// Absence of a value (flexible-schema rows miss fields routinely).
    Null,
}

impl Value {
    /// The data type of this value, or `None` for null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Null => None,
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float; integers widen losslessly where possible.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

/// Comparison operators usable in scan predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the operator to ordered operands.
    #[inline]
    pub fn eval<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The operator with operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negated() b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_and_accessors() {
        assert_eq!(Value::Int(3).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float64));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Float(2.5).as_int(), None);
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
    }

    #[test]
    fn value_display() {
        assert_eq!(format!("{}", Value::Int(7)), "7");
        assert_eq!(format!("{}", Value::Null), "NULL");
        assert_eq!(format!("{}", Value::from("a")), "\"a\"");
    }

    #[test]
    fn cmp_op_eval_all() {
        assert!(CmpOp::Eq.eval(1, 1));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
    }

    #[test]
    fn cmp_op_flip_negate_consistent() {
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        for op in ops {
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_eq!(op.eval(a, b), op.flipped().eval(b, a), "{op} {a} {b}");
                    assert_eq!(op.eval(a, b), !op.negated().eval(a, b), "{op} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", DataType::Int64), "int64");
        assert_eq!(format!("{}", CmpOp::Le), "<=");
    }
}
