//! Record batches: equal-length named columns, the unit the vectorized
//! engine consumes ("morsels" are row-ranges of a chunk).

use crate::column::Column;
use crate::value::{DataType, Value};
use std::fmt;

/// Error constructing or extending a [`Chunk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Columns have differing lengths.
    RaggedColumns {
        /// The length of the first column.
        expected: usize,
        /// The offending column's name.
        column: String,
        /// The offending column's length.
        found: usize,
    },
    /// A column name appears twice.
    DuplicateColumn(
        /// The duplicated name.
        String,
    ),
    /// A referenced column does not exist.
    NoSuchColumn(
        /// The missing name.
        String,
    ),
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::RaggedColumns { expected, column, found } => {
                write!(f, "column {column:?} has {found} rows, expected {expected}")
            }
            ChunkError::DuplicateColumn(name) => write!(f, "duplicate column {name:?}"),
            ChunkError::NoSuchColumn(name) => write!(f, "no such column {name:?}"),
        }
    }
}

impl std::error::Error for ChunkError {}

/// An immutable-schema batch of equal-length columns.
///
/// ```
/// use haec_columnar::chunk::Chunk;
/// use haec_columnar::column::Column;
/// let chunk = Chunk::new(vec![
///     ("id".into(), (0i64..4).collect::<Vec<_>>().into_iter().collect::<Column>()),
///     ("price".into(), vec![9.5f64, 1.0, 2.0, 3.25].into_iter().collect::<Column>()),
/// ]).unwrap();
/// assert_eq!(chunk.rows(), 4);
/// assert_eq!(chunk.column("price").unwrap().data_type().to_string(), "float64");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Chunk {
    columns: Vec<(String, Column)>,
    rows: usize,
}

impl Chunk {
    /// Builds a chunk from named columns.
    ///
    /// # Errors
    ///
    /// Returns [`ChunkError::RaggedColumns`] if lengths differ and
    /// [`ChunkError::DuplicateColumn`] on name collisions.
    pub fn new(columns: Vec<(String, Column)>) -> Result<Self, ChunkError> {
        let rows = columns.first().map_or(0, |(_, c)| c.len());
        for (name, col) in &columns {
            if col.len() != rows {
                return Err(ChunkError::RaggedColumns {
                    expected: rows,
                    column: name.clone(),
                    found: col.len(),
                });
            }
        }
        for (i, (name, _)) in columns.iter().enumerate() {
            if columns[..i].iter().any(|(n, _)| n == name) {
                return Err(ChunkError::DuplicateColumn(name.clone()));
            }
        }
        Ok(Chunk { columns, rows })
    }

    /// An empty, zero-column chunk.
    pub fn empty() -> Self {
        Chunk { columns: Vec::new(), rows: 0 }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx).map(|(_, c)| c)
    }

    /// The positional index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Iterates over `(name, column)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Column)> + '_ {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The `(name, type)` schema of this chunk.
    pub fn schema(&self) -> Vec<(String, DataType)> {
        self.columns.iter().map(|(n, c)| (n.clone(), c.data_type())).collect()
    }

    /// One row as values (for debugging / result rendering).
    pub fn row(&self, i: usize) -> Option<Vec<Value>> {
        if i >= self.rows {
            return None;
        }
        Some(self.columns.iter().map(|(_, c)| c.get(i).expect("within bounds")).collect())
    }

    /// Gathers `positions` rows from all columns into a new chunk.
    ///
    /// String columns gather **code-to-code** (see [`Column::gather`]):
    /// the output dictionary holds each distinct gathered value once, so
    /// gathering N rows never hashes N strings.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of bounds.
    pub fn gather(&self, positions: &[usize]) -> Chunk {
        Chunk {
            columns: self.columns.iter().map(|(n, c)| (n.clone(), c.gather(positions))).collect(),
            rows: positions.len(),
        }
    }

    /// Total approximate footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::DictColumn;

    fn sample() -> Chunk {
        Chunk::new(vec![
            ("id".into(), (0i64..5).collect::<Vec<_>>().into_iter().collect()),
            ("grp".into(), Column::Str(DictColumn::from_iter(["a", "b", "a", "b", "c"]))),
        ])
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let c = sample();
        assert_eq!(c.rows(), 5);
        assert_eq!(c.width(), 2);
        assert_eq!(c.names(), vec!["id", "grp"]);
        assert_eq!(c.column_index("grp"), Some(1));
        assert_eq!(c.column_index("zz"), None);
        assert!(c.column("id").is_some());
        assert!(c.column_at(1).is_some());
        assert!(c.column_at(2).is_none());
    }

    #[test]
    fn schema_and_rows() {
        let c = sample();
        let schema = c.schema();
        assert_eq!(schema[0], ("id".to_string(), DataType::Int64));
        assert_eq!(schema[1], ("grp".to_string(), DataType::Str));
        let row = c.row(2).unwrap();
        assert_eq!(row, vec![Value::Int(2), Value::from("a")]);
        assert!(c.row(5).is_none());
    }

    #[test]
    fn ragged_rejected() {
        let err = Chunk::new(vec![
            ("a".into(), vec![1i64].into_iter().collect()),
            ("b".into(), vec![1i64, 2].into_iter().collect()),
        ])
        .unwrap_err();
        assert!(matches!(err, ChunkError::RaggedColumns { .. }));
        assert!(format!("{err}").contains("expected 1"));
    }

    #[test]
    fn duplicate_rejected() {
        let err = Chunk::new(vec![
            ("a".into(), vec![1i64].into_iter().collect()),
            ("a".into(), vec![2i64].into_iter().collect()),
        ])
        .unwrap_err();
        assert_eq!(err, ChunkError::DuplicateColumn("a".into()));
    }

    #[test]
    fn gather_rows() {
        let c = sample();
        let g = c.gather(&[4, 0]);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.row(0).unwrap(), vec![Value::Int(4), Value::from("c")]);
        assert_eq!(g.row(1).unwrap(), vec![Value::Int(0), Value::from("a")]);
        // Code-to-code: the gathered string column's dictionary holds
        // only the touched values.
        assert_eq!(g.column("grp").unwrap().as_str().unwrap().dict_size(), 2);
    }

    #[test]
    fn empty_chunk() {
        let c = Chunk::empty();
        assert_eq!(c.rows(), 0);
        assert_eq!(c.width(), 0);
        assert_eq!(c.size_bytes(), 0);
    }
}
