//! Dictionary-encoded string columns.
//!
//! Strings are stored once in an order-preserving-insertion dictionary;
//! the column itself is a vector of `u32` codes, so scans, joins and
//! group-bys on strings run at integer speed — the standard column-store
//! design the paper's in-memory premise builds on.

use std::collections::HashMap;
use std::fmt;

/// A string column as (dictionary, codes).
///
/// ```
/// use haec_columnar::dict::DictColumn;
/// let mut c = DictColumn::new();
/// c.push("de");
/// c.push("us");
/// c.push("de");
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.dict_size(), 2);
/// assert_eq!(c.get(2), Some("de"));
/// ```
#[derive(Clone, Default, PartialEq)]
pub struct DictColumn {
    dict: Vec<String>,
    lookup: HashMap<String, u32>,
    codes: Vec<u32>,
    /// Running total of dictionary-entry payload bytes, so
    /// [`DictColumn::avg_entry_bytes`] (the planner's projection-cost
    /// input) is O(1) instead of a full dictionary walk per query.
    entry_bytes: usize,
}

impl DictColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        DictColumn::default()
    }

    /// Appends a value, interning it if unseen. Returns its code.
    pub fn push(&mut self, value: &str) -> u32 {
        let code = self.intern(value);
        self.codes.push(code);
        code
    }

    /// Interns `value` without appending a row; returns its code.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&c) = self.lookup.get(value) {
            return c;
        }
        let c = u32::try_from(self.dict.len()).expect("dictionary exceeds u32 codes");
        self.dict.push(value.to_string());
        self.lookup.insert(value.to_string(), c);
        self.entry_bytes += value.len();
        c
    }

    /// The code for `value` if it was ever interned.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.lookup.get(value).copied()
    }

    /// The string for a code.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.dict.get(code as usize).map(String::as_str)
    }

    /// The value at row `i`.
    pub fn get(&self, i: usize) -> Option<&str> {
        self.codes.get(i).and_then(|&c| self.decode(c))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values interned.
    pub fn dict_size(&self) -> usize {
        self.dict.len()
    }

    /// Iterates the distinct interned values in code order.
    pub fn iter_dict(&self) -> impl Iterator<Item = &str> + '_ {
        self.dict.iter().map(String::as_str)
    }

    /// Appends a row by an **already-interned** code — the code-to-code
    /// fast path positional gathers use: no per-row string hashing.
    ///
    /// # Panics
    ///
    /// Panics if `code` was never interned.
    pub fn push_code(&mut self, code: u32) {
        assert!((code as usize) < self.dict.len(), "code {code} not interned");
        self.codes.push(code);
    }

    /// Builds a column directly from an already-deduplicated dictionary
    /// and a vector of row codes — the cheap codes-to-client
    /// construction path projections use: O(codes) moves plus one
    /// lookup-table insert per **distinct** value; no per-row string
    /// hashing ever happens.
    ///
    /// ```
    /// use haec_columnar::dict::DictColumn;
    /// let c = DictColumn::from_codes(vec!["de".into(), "us".into()], vec![0, 1, 0, 0]);
    /// assert_eq!(c.len(), 4);
    /// assert_eq!(c.dict_size(), 2);
    /// assert_eq!(c.get(3), Some("de"));
    /// assert_eq!(c.code_of("us"), Some(1));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `dict` holds duplicates (that would break the
    /// `decode`/`code_of` round trip). Out-of-range codes are a logic
    /// error checked in debug builds only — validating them costs a
    /// full extra pass over the code vector, which the gather hot paths
    /// constructing codes in-range by construction must not pay.
    pub fn from_codes(dict: Vec<String>, codes: Vec<u32>) -> Self {
        let mut lookup = HashMap::with_capacity(dict.len());
        for (i, s) in dict.iter().enumerate() {
            let prev = lookup.insert(s.clone(), i as u32);
            assert!(prev.is_none(), "duplicate dictionary entry {s:?}");
        }
        debug_assert!(codes.iter().all(|&c| (c as usize) < dict.len()), "code not interned");
        let entry_bytes = dict.iter().map(String::len).sum();
        DictColumn { dict, lookup, codes, entry_bytes }
    }

    /// A copy holding only rows `[start, end)` of this column, sharing
    /// the full dictionary (entries and codes stay stable) — the
    /// delta-prefix view an MVCC snapshot pins: later appends and later
    /// dictionary growth are invisible through the slice, but every
    /// code the kept rows carry still decodes.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn sliced(&self, start: usize, end: usize) -> DictColumn {
        DictColumn {
            dict: self.dict.clone(),
            lookup: self.lookup.clone(),
            codes: self.codes[start..end].to_vec(),
            entry_bytes: self.entry_bytes,
        }
    }

    /// For every distinct value of `self` (in code order), the code
    /// `target` assigns that value, or `None` if `target` never interned
    /// it — the one-off dictionary remap that lets equi-joins and
    /// gathers translate between two code spaces in O(dictionary)
    /// lookups, never O(rows).
    pub fn codes_in(&self, target: &DictColumn) -> Vec<Option<u32>> {
        self.dict.iter().map(|s| target.code_of(s)).collect()
    }

    /// The raw code vector (the integer view scans operate on).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Iterates over the row values.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.codes.iter().map(|&c| self.dict[c as usize].as_str())
    }

    /// Mean payload length of a dictionary entry in bytes (0 when
    /// empty) — O(1), maintained at intern time; the planner's
    /// projection costing reads this per query, so it must never walk
    /// the dictionary.
    pub fn avg_entry_bytes(&self) -> usize {
        if self.dict.is_empty() {
            0
        } else {
            self.entry_bytes / self.dict.len()
        }
    }

    /// Approximate heap footprint in bytes (codes + dictionary strings).
    pub fn size_bytes(&self) -> usize {
        let codes = self.codes.len() * std::mem::size_of::<u32>();
        codes + self.entry_bytes + self.dict.len() * std::mem::size_of::<String>()
    }
}

impl fmt::Debug for DictColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DictColumn({} rows, {} distinct)", self.codes.len(), self.dict.len())
    }
}

impl<S: AsRef<str>> FromIterator<S> for DictColumn {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut c = DictColumn::new();
        for v in iter {
            c.push(v.as_ref());
        }
        c
    }
}

impl<'a> Extend<&'a str> for DictColumn {
    fn extend<I: IntoIterator<Item = &'a str>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = DictColumn::new();
        assert!(c.is_empty());
        c.push("a");
        c.push("b");
        c.push("a");
        assert_eq!(c.len(), 3);
        assert_eq!(c.dict_size(), 2);
        assert_eq!(c.get(0), Some("a"));
        assert_eq!(c.get(1), Some("b"));
        assert_eq!(c.get(2), Some("a"));
        assert_eq!(c.get(3), None);
    }

    #[test]
    fn codes_are_stable() {
        let mut c = DictColumn::new();
        let a1 = c.push("x");
        let b = c.push("y");
        let a2 = c.push("x");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(c.codes(), &[a1, b, a1]);
    }

    #[test]
    fn code_of_and_decode() {
        let c: DictColumn = ["p", "q"].into_iter().collect();
        let p = c.code_of("p").unwrap();
        assert_eq!(c.decode(p), Some("p"));
        assert_eq!(c.code_of("zz"), None);
        assert_eq!(c.decode(99), None);
    }

    #[test]
    fn iter_round_trip() {
        let values = ["de", "us", "fr", "de", "de"];
        let c = DictColumn::from_iter(values);
        let out: Vec<&str> = c.iter().collect();
        assert_eq!(out, values);
    }

    #[test]
    fn extend_appends() {
        let mut c = DictColumn::new();
        c.extend(["a", "b"]);
        c.extend(["b", "c"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.dict_size(), 3);
    }

    #[test]
    fn avg_entry_bytes_tracks_interning() {
        let mut c = DictColumn::new();
        assert_eq!(c.avg_entry_bytes(), 0, "empty dictionary");
        c.push("ab");
        c.push("ab");
        c.push("abcd");
        assert_eq!(c.avg_entry_bytes(), 3, "mean of {{ab, abcd}}, repeats free");
    }

    #[test]
    fn size_accounts_for_dedup() {
        let mut many_distinct = DictColumn::new();
        let mut few_distinct = DictColumn::new();
        for i in 0..1000 {
            many_distinct.push(&format!("value-{i}"));
            few_distinct.push(&format!("value-{}", i % 4));
        }
        assert!(few_distinct.size_bytes() < many_distinct.size_bytes() / 2);
    }

    #[test]
    fn push_code_skips_hashing_path() {
        let mut c = DictColumn::from_iter(["a", "b"]);
        c.push_code(0);
        assert_eq!(c.get(2), Some("a"));
        assert_eq!(c.len(), 3);
        assert_eq!(c.dict_size(), 2);
    }

    #[test]
    #[should_panic(expected = "not interned")]
    fn push_code_rejects_unknown() {
        DictColumn::new().push_code(0);
    }

    #[test]
    fn from_codes_builds_without_row_hashing() {
        let c = DictColumn::from_codes(vec!["x".into(), "y".into()], vec![1, 0, 1, 1]);
        let got: Vec<&str> = c.iter().collect();
        assert_eq!(got, vec!["y", "x", "y", "y"]);
        // The lookup table is fully built: code_of and intern see the
        // existing entries.
        assert_eq!(c.code_of("y"), Some(1));
        assert_eq!(c.avg_entry_bytes(), 1);
        let mut c = c;
        assert_eq!(c.intern("x"), 0, "existing entry, no new code");
        // Empty construction is fine.
        assert!(DictColumn::from_codes(Vec::new(), Vec::new()).is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not interned")]
    fn from_codes_rejects_out_of_range() {
        DictColumn::from_codes(vec!["a".into()], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate dictionary entry")]
    fn from_codes_rejects_duplicate_entries() {
        DictColumn::from_codes(vec!["a".into(), "a".into()], vec![0]);
    }

    #[test]
    fn sliced_keeps_full_dictionary() {
        let c = DictColumn::from_iter(["a", "b", "c", "b"]);
        let s = c.sliced(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Some("b"));
        assert_eq!(s.get(1), Some("c"));
        // The dictionary is carried whole: codes and entries are stable.
        assert_eq!(s.dict_size(), 3);
        assert_eq!(s.code_of("a"), c.code_of("a"));
        assert_eq!(s.avg_entry_bytes(), c.avg_entry_bytes());
        assert!(c.sliced(0, 0).is_empty());
    }

    #[test]
    fn codes_in_translates_code_spaces() {
        let a = DictColumn::from_iter(["x", "y", "z"]);
        let b = DictColumn::from_iter(["z", "x"]);
        let remap = a.codes_in(&b);
        assert_eq!(remap, vec![Some(1), None, Some(0)]);
        assert_eq!(b.codes_in(&a), vec![Some(2), Some(0)]);
        assert!(DictColumn::new().codes_in(&a).is_empty());
    }

    #[test]
    fn debug_format() {
        let c = DictColumn::from_iter(["a", "a"]);
        assert_eq!(format!("{c:?}"), "DictColumn(2 rows, 1 distinct)");
    }
}
