//! # haec-columnar
//!
//! In-memory columnar storage with lightweight compression — the storage
//! substrate of the `haecdb` reproduction of *Lehner, "Energy-Efficient
//! In-Memory Database Computing" (DATE 2013)*.
//!
//! The paper's premise is a main-memory column store ("main memory is
//! the new disk, cache lines are the new blocks"). This crate provides:
//!
//! * typed [`column::Column`]s and record [`chunk::Chunk`]s,
//! * dictionary-encoded strings ([`dict::DictColumn`]),
//! * packed [`bitmap::Bitmap`] selection vectors (the 64-lane SIMD
//!   stand-in used throughout the engine),
//! * lightweight integer compression ([`encoding`]): RLE,
//!   frame-of-reference bit packing and delta encoding, all supporting
//!   predicate evaluation **directly on compressed data** — the property
//!   the paper's compressed-shipping optimizer decision (E3) relies on.
//!
//! ## Example
//!
//! ```
//! use haec_columnar::prelude::*;
//!
//! // Encode a sorted key column, scan it without decompressing.
//! let keys: Vec<i64> = (0..10_000).collect();
//! let encoded = EncodedInts::auto(&keys);
//! assert!(encoded.stats().ratio() > 4.0);
//! let mut hits = Bitmap::zeros(keys.len());
//! encoded.scan(CmpOp::Lt, 100, &mut hits);
//! assert_eq!(hits.count_ones(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitmap;
pub mod chunk;
pub mod column;
pub mod dict;
pub mod encoding;
pub mod value;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::bitmap::Bitmap;
    pub use crate::chunk::{Chunk, ChunkError};
    pub use crate::column::{Column, ColumnStats, TypeMismatchError};
    pub use crate::dict::DictColumn;
    pub use crate::encoding::{CompressionStats, EncodedInts, Scheme};
    pub use crate::value::{CmpOp, DataType, Value};
}

pub use bitmap::Bitmap;
pub use chunk::Chunk;
pub use column::Column;
pub use dict::DictColumn;
pub use encoding::{EncodedInts, Scheme};
pub use value::{CmpOp, DataType, Value};
