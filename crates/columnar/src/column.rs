//! Typed in-memory columns and their statistics.

use crate::dict::DictColumn;
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Error returned when a value of the wrong type is appended to a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeMismatchError {
    /// The column's type.
    pub expected: DataType,
    /// The offending value's type (`None` = null).
    pub found: Option<DataType>,
}

impl fmt::Display for TypeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.found {
            Some(t) => write!(f, "expected {} value, found {}", self.expected, t),
            None => write!(f, "expected {} value, found null", self.expected),
        }
    }
}

impl std::error::Error for TypeMismatchError {}

/// A typed, densely stored column.
///
/// ```
/// use haec_columnar::column::Column;
/// use haec_columnar::value::Value;
/// let mut c = Column::new_int64();
/// c.push(Value::Int(7)).unwrap();
/// assert_eq!(c.len(), 1);
/// assert_eq!(c.get(0), Some(Value::Int(7)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Dictionary-encoded strings.
    Str(DictColumn),
}

impl Column {
    /// Creates an empty integer column.
    pub fn new_int64() -> Self {
        Column::Int64(Vec::new())
    }

    /// Creates an empty float column.
    pub fn new_float64() -> Self {
        Column::Float64(Vec::new())
    }

    /// Creates an empty string column.
    pub fn new_str() -> Self {
        Column::Str(DictColumn::new())
    }

    /// Creates an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::new_int64(),
            DataType::Float64 => Column::new_float64(),
            DataType::Str => Column::new_str(),
        }
    }

    /// The column's logical type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Str(d) => d.len(),
        }
    }

    /// Returns `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value.
    ///
    /// Nulls are materialized as the type's default sentinel (`0`, `0.0`,
    /// `""`): the flexible-schema layer above records null positions in a
    /// separate bitmap and the dense storage stays branch-free.
    ///
    /// # Errors
    ///
    /// Returns [`TypeMismatchError`] if the value has a different type.
    pub fn push(&mut self, value: Value) -> Result<(), TypeMismatchError> {
        match (self, &value) {
            (Column::Int64(v), Value::Int(x)) => v.push(*x),
            (Column::Float64(v), Value::Float(x)) => v.push(*x),
            (Column::Float64(v), Value::Int(x)) => v.push(*x as f64),
            (Column::Str(d), Value::Str(s)) => {
                d.push(s);
            }
            (Column::Int64(v), Value::Null) => v.push(0),
            (Column::Float64(v), Value::Null) => v.push(0.0),
            (Column::Str(d), Value::Null) => {
                d.push("");
            }
            (col, v) => return Err(TypeMismatchError { expected: col.data_type(), found: v.data_type() }),
        }
        Ok(())
    }

    /// The value at row `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<Value> {
        match self {
            Column::Int64(v) => v.get(i).map(|&x| Value::Int(x)),
            Column::Float64(v) => v.get(i).map(|&x| Value::Float(x)),
            Column::Str(d) => d.get(i).map(|s| Value::Str(s.to_string())),
        }
    }

    /// Borrowed view of the integer data.
    pub fn as_int64(&self) -> Option<&[i64]> {
        match self {
            Column::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrowed view of the float data.
    pub fn as_float64(&self) -> Option<&[f64]> {
        match self {
            Column::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrowed view of the dictionary column.
    pub fn as_str(&self) -> Option<&DictColumn> {
        match self {
            Column::Str(d) => Some(d),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Column::Int64(v) => v.len() * 8,
            Column::Float64(v) => v.len() * 8,
            Column::Str(d) => d.size_bytes(),
        }
    }

    /// Gathers the rows selected by ascending `positions` into a new
    /// column (the materialization step after a filter).
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds.
    pub fn gather(&self, positions: &[usize]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(positions.iter().map(|&i| v[i]).collect()),
            Column::Float64(v) => Column::Float64(positions.iter().map(|&i| v[i]).collect()),
            Column::Str(d) => {
                // Code-to-code: each distinct source code decodes into
                // the output dictionary once; repeats are O(1) remap
                // hits, never string hashes (see `DictColumn::from_codes`).
                // A gather far smaller than the dictionary keys a small
                // map by source code instead of allocating (and zeroing)
                // an O(dictionary) remap table.
                let mut dict: Vec<String> = Vec::new();
                let codes: Vec<u32> = if positions.len() * 8 < d.dict_size() {
                    let mut remap: HashMap<u32, u32> = HashMap::with_capacity(positions.len());
                    positions
                        .iter()
                        .map(|&i| {
                            let c = d.codes()[i];
                            *remap.entry(c).or_insert_with(|| {
                                dict.push(d.decode(c).expect("code in dict").to_string());
                                (dict.len() - 1) as u32
                            })
                        })
                        .collect()
                } else {
                    let mut remap: Vec<Option<u32>> = vec![None; d.dict_size()];
                    positions
                        .iter()
                        .map(|&i| {
                            let c = d.codes()[i] as usize;
                            *remap[c].get_or_insert_with(|| {
                                dict.push(d.decode(c as u32).expect("code in dict").to_string());
                                (dict.len() - 1) as u32
                            })
                        })
                        .collect()
                };
                Column::Str(DictColumn::from_codes(dict, codes))
            }
        }
    }

    /// Computes column statistics (a full pass; the catalog caches them).
    pub fn stats(&self) -> ColumnStats {
        match self {
            Column::Int64(v) => {
                let min = v.iter().copied().min();
                let max = v.iter().copied().max();
                ColumnStats {
                    rows: v.len(),
                    min: min.map(Value::Int),
                    max: max.map(Value::Int),
                    distinct: estimate_distinct_ints(v),
                }
            }
            Column::Float64(v) => {
                let min = v.iter().copied().fold(f64::INFINITY, f64::min);
                let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                ColumnStats {
                    rows: v.len(),
                    min: (!v.is_empty()).then_some(Value::Float(min)),
                    max: (!v.is_empty()).then_some(Value::Float(max)),
                    distinct: estimate_distinct_floats(v),
                }
            }
            Column::Str(d) => {
                let min = d.iter().min().map(|s| Value::Str(s.to_string()));
                let max = d.iter().max().map(|s| Value::Str(s.to_string()));
                ColumnStats { rows: d.len(), min, max, distinct: d.dict_size() as u64 }
            }
        }
    }
}

impl FromIterator<i64> for Column {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        Column::Int64(iter.into_iter().collect())
    }
}

impl FromIterator<f64> for Column {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Column::Float64(iter.into_iter().collect())
    }
}

/// Summary statistics the optimizer consumes.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Number of rows.
    pub rows: usize,
    /// Smallest value (`None` if empty).
    pub min: Option<Value>,
    /// Largest value (`None` if empty).
    pub max: Option<Value>,
    /// (Estimated) number of distinct values.
    pub distinct: u64,
}

impl ColumnStats {
    /// Estimated selectivity of `col = literal` under uniformity.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// Estimated selectivity of `col < x` for an integer literal using
    /// the min/max range (linear interpolation).
    pub fn lt_selectivity(&self, x: i64) -> f64 {
        match (&self.min, &self.max) {
            (Some(Value::Int(lo)), Some(Value::Int(hi))) if hi > lo => {
                ((x - lo) as f64 / (hi - lo + 1) as f64).clamp(0.0, 1.0)
            }
            _ => 0.5,
        }
    }
}

const DISTINCT_SAMPLE: usize = 8192;

fn estimate_distinct_ints(v: &[i64]) -> u64 {
    if v.len() <= DISTINCT_SAMPLE {
        return v.iter().collect::<HashSet<_>>().len() as u64;
    }
    // Sample-based first-order jackknife estimate.
    let step = v.len() / DISTINCT_SAMPLE;
    let sample: Vec<i64> = v.iter().step_by(step).copied().collect();
    let d = sample.iter().collect::<HashSet<_>>().len() as f64;
    let scale = v.len() as f64 / sample.len() as f64;
    ((d * scale.sqrt()).min(v.len() as f64)) as u64
}

fn estimate_distinct_floats(v: &[f64]) -> u64 {
    let take = v.len().min(DISTINCT_SAMPLE);
    let d = v[..take].iter().map(|f| f.to_bits()).collect::<HashSet<_>>().len();
    if v.len() <= DISTINCT_SAMPLE {
        d as u64
    } else {
        ((d as f64) * (v.len() as f64 / take as f64).sqrt()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_each_type() {
        let mut i = Column::new_int64();
        i.push(Value::Int(1)).unwrap();
        i.push(Value::Null).unwrap();
        assert_eq!(i.get(0), Some(Value::Int(1)));
        assert_eq!(i.get(1), Some(Value::Int(0)), "null sentinel");

        let mut f = Column::new_float64();
        f.push(Value::Float(2.5)).unwrap();
        f.push(Value::Int(2)).unwrap(); // widening accepted
        assert_eq!(f.get(1), Some(Value::Float(2.0)));

        let mut s = Column::new_str();
        s.push(Value::from("x")).unwrap();
        assert_eq!(s.get(0), Some(Value::from("x")));
    }

    #[test]
    fn push_type_mismatch() {
        let mut i = Column::new_int64();
        let err = i.push(Value::from("nope")).unwrap_err();
        assert_eq!(err.expected, DataType::Int64);
        assert_eq!(err.found, Some(DataType::Str));
        assert!(format!("{err}").contains("expected int64"));
    }

    #[test]
    fn constructors_match_type() {
        for t in [DataType::Int64, DataType::Float64, DataType::Str] {
            assert_eq!(Column::new(t).data_type(), t);
        }
    }

    #[test]
    fn gather_selects_rows() {
        let c: Column = vec![10i64, 20, 30, 40].into_iter().collect();
        let g = c.gather(&[0, 2, 3]);
        assert_eq!(g.as_int64().unwrap(), &[10, 30, 40]);

        let s = Column::Str(DictColumn::from_iter(["a", "b", "c"]));
        let g = s.gather(&[2, 0]);
        assert_eq!(g.as_str().unwrap().iter().collect::<Vec<_>>(), vec!["c", "a"]);
    }

    #[test]
    fn gather_str_dedups_output_dictionary() {
        // Duplicate gathers share one dictionary entry (code-to-code),
        // and untouched source values never reach the output dictionary.
        let s = Column::Str(DictColumn::from_iter(["a", "b", "c", "b"]));
        let g = s.gather(&[1, 3, 1]);
        let d = g.as_str().unwrap();
        assert_eq!(d.iter().collect::<Vec<_>>(), vec!["b", "b", "b"]);
        assert_eq!(d.dict_size(), 1);
        // Tiny gather from a high-NDV column: the small-map branch gives
        // the same result without an O(dictionary) remap table.
        let values: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        let wide = Column::Str(values.iter().map(String::as_str).collect());
        let g = wide.gather(&[7, 123, 7]);
        let d = g.as_str().unwrap();
        assert_eq!(d.iter().collect::<Vec<_>>(), vec!["v7", "v123", "v7"]);
        assert_eq!(d.dict_size(), 2);
    }

    #[test]
    fn stats_int() {
        let c: Column = vec![5i64, 1, 5, 9].into_iter().collect();
        let s = c.stats();
        assert_eq!(s.rows, 4);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert_eq!(s.distinct, 3);
    }

    #[test]
    fn stats_float_and_str() {
        let f: Column = vec![1.0f64, 2.0, 2.0].into_iter().collect();
        let s = f.stats();
        assert_eq!(s.min, Some(Value::Float(1.0)));
        assert_eq!(s.distinct, 2);

        let c = Column::Str(DictColumn::from_iter(["b", "a", "b"]));
        let s = c.stats();
        assert_eq!(s.min, Some(Value::from("a")));
        assert_eq!(s.max, Some(Value::from("b")));
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn stats_empty() {
        let c = Column::new_int64();
        let s = c.stats();
        assert_eq!(s.rows, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.eq_selectivity(), 0.0);
    }

    #[test]
    fn distinct_estimate_large() {
        // 100k rows cycling through 100 values: estimate should be far
        // below the row count and within an order of magnitude of 100.
        let v: Vec<i64> = (0..100_000).map(|i| i % 100).collect();
        let d = estimate_distinct_ints(&v);
        assert!((50..=10_000).contains(&d), "estimate {d}");
    }

    #[test]
    fn selectivity_estimates() {
        let c: Column = (0i64..100).collect::<Vec<_>>().into_iter().collect();
        let s = c.stats();
        assert!((s.eq_selectivity() - 0.01).abs() < 1e-9);
        assert!((s.lt_selectivity(50) - 0.5).abs() < 0.02);
        assert_eq!(s.lt_selectivity(-5), 0.0);
        assert_eq!(s.lt_selectivity(500), 1.0);
    }

    #[test]
    fn size_bytes_scales() {
        let c: Column = (0i64..1000).collect::<Vec<_>>().into_iter().collect();
        assert_eq!(c.size_bytes(), 8000);
    }
}
