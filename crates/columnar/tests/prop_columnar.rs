//! Property-based tests: encodings are lossless and scan-equivalent for
//! arbitrary data, bitmaps obey boolean algebra.

use haec_columnar::prelude::*;
use proptest::prelude::*;

/// Arbitrary integer data with a bias toward runs and narrow ranges so
/// all encodings get exercised on their favourable shapes too.
fn int_data() -> impl Strategy<Value = Vec<i64>> {
    prop_oneof![
        proptest::collection::vec(any::<i64>(), 0..300),
        proptest::collection::vec(-100i64..100, 0..300),
        // run-heavy
        proptest::collection::vec((0i64..5, 1usize..20), 0..40)
            .prop_map(|runs| { runs.into_iter().flat_map(|(v, n)| std::iter::repeat_n(v, n)).collect() }),
        // monotone
        proptest::collection::vec(0i64..1000, 0..300).prop_map(|mut v| {
            let mut acc = 0i64;
            for x in &mut v {
                acc += *x;
                *x = acc;
            }
            v
        }),
    ]
}

proptest! {
    #[test]
    fn encodings_round_trip(data in int_data()) {
        for scheme in Scheme::ALL {
            let e = EncodedInts::encode(&data, scheme);
            prop_assert_eq!(e.decode(), data.clone(), "{}", scheme);
        }
    }

    #[test]
    fn encoded_get_matches(data in int_data(), idx in any::<prop::sample::Index>()) {
        if data.is_empty() { return Ok(()); }
        let i = idx.index(data.len());
        for scheme in Scheme::ALL {
            let e = EncodedInts::encode(&data, scheme);
            prop_assert_eq!(e.get(i), data[i], "{} row {}", scheme, i);
        }
    }

    #[test]
    fn encoded_scan_matches_reference(data in int_data(), lit in -150i64..150) {
        // Full parity matrix: every scheme × every operator on the same
        // input must agree with the row-at-a-time reference.
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let reference: Vec<bool> = data.iter().map(|&v| op.eval(v, lit)).collect();
            let want = Bitmap::from_bools(&reference);
            for scheme in Scheme::ALL {
                let e = EncodedInts::encode(&data, scheme);
                let mut got = Bitmap::zeros(data.len());
                e.scan(op, lit, &mut got);
                prop_assert_eq!(&got, &want, "{} {} {}", scheme, op, lit);
            }
        }
    }

    #[test]
    fn auto_is_never_larger_than_plain(data in int_data()) {
        let auto = EncodedInts::auto(&data);
        prop_assert!(auto.size_bytes() <= data.len() * 8);
    }

    #[test]
    fn min_max_matches(data in int_data()) {
        let want = data.iter().copied().min().zip(data.iter().copied().max());
        for scheme in Scheme::ALL {
            let e = EncodedInts::encode(&data, scheme);
            prop_assert_eq!(e.min_max(), want, "{}", scheme);
        }
    }

    #[test]
    fn bitmap_de_morgan(bools_a in proptest::collection::vec(any::<bool>(), 1..200)) {
        let n = bools_a.len();
        let bools_b: Vec<bool> = bools_a.iter().map(|b| !b).collect();
        let a = Bitmap::from_bools(&bools_a);
        let b = Bitmap::from_bools(&bools_b);
        // !(a & b) == !a | !b
        let mut lhs = a.clone();
        lhs.and_with(&b);
        lhs.negate();
        let mut na = a.clone();
        na.negate();
        let mut nb = b.clone();
        nb.negate();
        let mut rhs = na;
        rhs.or_with(&nb);
        prop_assert_eq!(lhs, rhs);
        // complement counts
        let mut c = a.clone();
        c.negate();
        prop_assert_eq!(c.count_ones(), n - a.count_ones());
    }

    #[test]
    fn bitmap_set_range_equals_loop(len in 1usize..300, a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        let (mut lo, mut hi) = (a.index(len), b.index(len));
        if lo > hi { std::mem::swap(&mut lo, &mut hi); }
        let mut fast = Bitmap::zeros(len);
        fast.set_range(lo, hi, true);
        let mut slow = Bitmap::zeros(len);
        for i in lo..hi { slow.set(i, true); }
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn dict_column_round_trip(values in proptest::collection::vec("[a-z]{0,6}", 0..100)) {
        let c = DictColumn::from_iter(values.iter());
        prop_assert_eq!(c.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(c.get(i), Some(v.as_str()));
        }
        prop_assert!(c.dict_size() <= values.len().max(1));
    }

    #[test]
    fn chunk_gather_preserves_rows(data in proptest::collection::vec(any::<i64>(), 1..100)) {
        let col: Column = data.clone().into_iter().collect();
        let chunk = Chunk::new(vec![("v".into(), col)]).unwrap();
        let positions: Vec<usize> = (0..data.len()).rev().collect();
        let g = chunk.gather(&positions);
        for (out_row, &src) in positions.iter().enumerate() {
            prop_assert_eq!(g.row(out_row).unwrap()[0].as_int().unwrap(), data[src]);
        }
    }
}
