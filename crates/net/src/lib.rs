//! # haec-net
//!
//! Simulated reconfigurable interconnect and the compressed-shipping
//! decision — the communication substrate of the `haecdb` reproduction
//! of *Lehner, "Energy-Efficient In-Memory Database Computing"
//! (DATE 2013)*.
//!
//! * [`topology`] — nodes and point-to-point links (QPI-class, 1/10 GbE,
//!   HAEC-style optical and wireless) with runtime enable/disable
//!   reconfiguration and per-link idle power.
//! * [`shipping`] — the paper's worked example: ship intermediates raw
//!   or compressed, decided case-by-case for time or energy
//!   (experiment E3).
//! * [`linksim`] — FIFO link contention on virtual time for the
//!   cluster simulations.
//!
//! ## Example
//!
//! ```
//! use haec_net::shipping::{decide, CompressorSpec, Objective};
//! use haec_net::topology::{LinkClass, LinkSpec};
//! use haec_energy::units::ByteCount;
//!
//! let codec = CompressorSpec::lightweight(4.0);
//! let slow = LinkSpec::default_for(LinkClass::Ethernet1G);
//! let fast = LinkSpec::default_for(LinkClass::IntraBoard);
//! let payload = ByteCount::from_mib(256);
//! assert!(decide(payload, &codec, &slow, Objective::MinTime).compress);
//! assert!(!decide(payload, &codec, &fast, Objective::MinTime).compress);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod linksim;
pub mod shipping;
pub mod topology;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::linksim::{LinkSim, TransferOutcome};
    pub use crate::shipping::{
        cost_compressed, cost_raw, decide, time_crossover_bandwidth, CompressorSpec, Objective, ShipCost,
        ShippingChoice,
    };
    pub use crate::topology::{Link, LinkClass, LinkSpec, NetError, NodeId, Topology};
}

pub use shipping::{decide, CompressorSpec, Objective, ShippingChoice};
pub use topology::{LinkClass, LinkSpec, NetError, NodeId, Topology};
