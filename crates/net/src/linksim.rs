//! Contention-aware transfer scheduling on virtual time.
//!
//! A link serves one transfer at a time (FIFO); concurrent requests
//! queue. This small model is what the elasticity simulation (E12) and
//! the distributed-shipping experiments use to get realistic completion
//! times without real packets.

use crate::topology::{NetError, NodeId, Topology};
use haec_energy::units::{ByteCount, Joules};
use haec_sim::time::SimTime;
use std::collections::HashMap;
use std::fmt;

/// A scheduled transfer's outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferOutcome {
    /// When the link started serving this transfer.
    pub started: SimTime,
    /// When the last byte arrived.
    pub finished: SimTime,
}

/// FIFO link scheduler over a [`Topology`].
pub struct LinkSim<'t> {
    topology: &'t Topology,
    next_free: HashMap<(NodeId, NodeId), SimTime>,
    total_energy: Joules,
    transfers: u64,
}

impl<'t> LinkSim<'t> {
    /// Creates a scheduler over `topology`.
    pub fn new(topology: &'t Topology) -> Self {
        LinkSim { topology, next_free: HashMap::new(), total_energy: Joules::ZERO, transfers: 0 }
    }

    /// Requests a transfer of `bytes` from `a` to `b` at time `now`;
    /// returns when it starts (after queueing) and completes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if no enabled link exists.
    pub fn request(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        bytes: ByteCount,
    ) -> Result<TransferOutcome, NetError> {
        let spec = self.topology.best_spec(a, b).ok_or(NetError::NoRoute(a, b))?;
        let key = if a <= b { (a, b) } else { (b, a) };
        let free_at = self.next_free.get(&key).copied().unwrap_or(SimTime::ZERO);
        let started = free_at.max(now);
        let finished = started + spec.transfer_time(bytes);
        self.next_free.insert(key, finished);
        self.total_energy += spec.transfer_energy(bytes);
        self.transfers += 1;
        Ok(TransferOutcome { started, finished })
    }

    /// Total dynamic energy of all transfers so far.
    pub fn total_energy(&self) -> Joules {
        self.total_energy
    }

    /// Number of transfers served.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

impl fmt::Debug for LinkSim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkSim")
            .field("transfers", &self.transfers)
            .field("energy", &self.total_energy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkClass;

    fn topo() -> Topology {
        let mut t = Topology::new(3);
        t.connect(NodeId(0), NodeId(1), LinkClass::Ethernet10G);
        t.connect(NodeId(1), NodeId(2), LinkClass::Ethernet10G);
        t
    }

    #[test]
    fn sequential_transfers_queue() {
        let t = topo();
        let mut sim = LinkSim::new(&t);
        let mb = ByteCount::from_mib(125); // ~105 ms on 10GbE
        let first = sim.request(SimTime::ZERO, NodeId(0), NodeId(1), mb).unwrap();
        let second = sim.request(SimTime::ZERO, NodeId(0), NodeId(1), mb).unwrap();
        assert_eq!(second.started, first.finished, "FIFO on the same link");
        assert!(second.finished > first.finished);
    }

    #[test]
    fn different_links_run_in_parallel() {
        let t = topo();
        let mut sim = LinkSim::new(&t);
        let mb = ByteCount::from_mib(125);
        let a = sim.request(SimTime::ZERO, NodeId(0), NodeId(1), mb).unwrap();
        let b = sim.request(SimTime::ZERO, NodeId(1), NodeId(2), mb).unwrap();
        assert_eq!(a.started, b.started, "independent links do not queue");
    }

    #[test]
    fn later_requests_start_later() {
        let t = topo();
        let mut sim = LinkSim::new(&t);
        let start = SimTime::from_secs(5);
        let out = sim.request(start, NodeId(0), NodeId(1), ByteCount::from_kib(1)).unwrap();
        assert_eq!(out.started, start);
    }

    #[test]
    fn energy_accumulates() {
        let t = topo();
        let mut sim = LinkSim::new(&t);
        sim.request(SimTime::ZERO, NodeId(0), NodeId(1), ByteCount::from_mib(1)).unwrap();
        sim.request(SimTime::ZERO, NodeId(1), NodeId(2), ByteCount::from_mib(1)).unwrap();
        assert!(sim.total_energy().joules() > 0.0);
        assert_eq!(sim.transfers(), 2);
    }

    #[test]
    fn no_route_is_error() {
        let t = topo();
        let mut sim = LinkSim::new(&t);
        assert!(sim.request(SimTime::ZERO, NodeId(0), NodeId(2), ByteCount::new(1)).is_err());
    }
}
