//! The simulated interconnect: nodes, links, runtime reconfiguration.
//!
//! Models the communication fabric the paper's energy argument ranges
//! over — from "other sockets on the same board" to cluster nodes — plus
//! the HAEC project's headline feature: "high-bandwidth, short-range
//! wireless and optical links to dynamically configure the topology of
//! the computer during runtime" (§III). Links can be enabled/disabled at
//! runtime and each carries bandwidth, latency, energy-per-byte and a
//! static power draw that is paid while the link is up.

use haec_energy::units::{ByteCount, Joules, Watts};
use haec_energy::ResourceProfile;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Identifier of a node (a socket or a machine, depending on scale).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The technology class of a link, with 2013-flavoured defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Socket-to-socket on one board (QPI-class).
    IntraBoard,
    /// 10 GbE within a rack.
    Ethernet10G,
    /// 1 GbE (legacy / management).
    Ethernet1G,
    /// HAEC-style short-range optical express link.
    Optical,
    /// HAEC-style short-range wireless link.
    Wireless,
}

/// Physical parameters of one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Bytes per second.
    pub bandwidth: f64,
    /// One-way propagation + stack latency.
    pub latency: Duration,
    /// Dynamic energy per byte (picojoules) across both endpoints.
    pub pj_per_byte: f64,
    /// Power drawn while the link is enabled, even if idle.
    pub idle_w: f64,
}

impl LinkSpec {
    /// Defaults for a technology class.
    pub fn default_for(class: LinkClass) -> LinkSpec {
        match class {
            LinkClass::IntraBoard => LinkSpec {
                bandwidth: 12.8e9,
                latency: Duration::from_nanos(300),
                pj_per_byte: 5.0,
                idle_w: 2.0,
            },
            LinkClass::Ethernet10G => LinkSpec {
                bandwidth: 10.0e9 / 8.0,
                latency: Duration::from_micros(30),
                pj_per_byte: 40.0,
                idle_w: 4.0,
            },
            LinkClass::Ethernet1G => LinkSpec {
                bandwidth: 1.0e9 / 8.0,
                latency: Duration::from_micros(60),
                pj_per_byte: 120.0,
                idle_w: 1.5,
            },
            LinkClass::Optical => LinkSpec {
                bandwidth: 40.0e9 / 8.0,
                latency: Duration::from_micros(2),
                pj_per_byte: 8.0,
                idle_w: 6.0,
            },
            LinkClass::Wireless => LinkSpec {
                bandwidth: 4.0e9 / 8.0,
                latency: Duration::from_micros(10),
                pj_per_byte: 250.0,
                idle_w: 3.0,
            },
        }
    }

    /// Time to move `bytes` across the link (latency + serialization).
    pub fn transfer_time(&self, bytes: ByteCount) -> Duration {
        self.latency + Duration::from_secs_f64(bytes.bytes() as f64 / self.bandwidth)
    }

    /// Dynamic energy to move `bytes`.
    pub fn transfer_energy(&self, bytes: ByteCount) -> Joules {
        Joules::new(bytes.bytes() as f64 * self.pj_per_byte * 1e-12)
    }
}

/// A link instance in a topology.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// Technology class.
    pub class: LinkClass,
    /// Physical parameters.
    pub spec: LinkSpec,
    /// Whether the link is currently powered/usable.
    pub enabled: bool,
}

/// Errors from topology operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No enabled link (or path) between the endpoints.
    NoRoute(
        /// Source.
        NodeId,
        /// Destination.
        NodeId,
    ),
    /// The referenced link does not exist.
    NoSuchLink(
        /// Source.
        NodeId,
        /// Destination.
        NodeId,
    ),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoRoute(a, b) => write!(f, "no enabled route between {a} and {b}"),
            NetError::NoSuchLink(a, b) => write!(f, "no link between {a} and {b}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A reconfigurable point-to-point topology.
///
/// ```
/// use haec_net::topology::{LinkClass, NodeId, Topology};
/// use haec_energy::units::ByteCount;
///
/// let mut t = Topology::new(4);
/// t.connect(NodeId(0), NodeId(1), LinkClass::Ethernet10G);
/// let (time, _profile) = t.transfer(NodeId(0), NodeId(1), ByteCount::from_mib(1)).unwrap();
/// assert!(time.as_micros() > 800); // ~1 MiB over 1.25 GB/s
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: u32,
    links: HashMap<(NodeId, NodeId), Link>,
}

impl Topology {
    /// Creates a topology of `nodes` unconnected nodes.
    pub fn new(nodes: u32) -> Self {
        Topology { nodes, links: HashMap::new() }
    }

    /// A fully connected cluster of `nodes` over one link class.
    pub fn full_mesh(nodes: u32, class: LinkClass) -> Self {
        let mut t = Topology::new(nodes);
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                t.connect(NodeId(a), NodeId(b), class);
            }
        }
        t
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of links (enabled or not).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Adds (or replaces) a bidirectional link of `class`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, class: LinkClass) {
        self.connect_with(a, b, class, LinkSpec::default_for(class));
    }

    /// Adds (or replaces) a link with explicit parameters.
    pub fn connect_with(&mut self, a: NodeId, b: NodeId, class: LinkClass, spec: LinkSpec) {
        assert!(a.0 < self.nodes && b.0 < self.nodes, "node out of range");
        assert_ne!(a, b, "no self links");
        self.links.insert(Self::key(a, b), Link { class, spec, enabled: true });
    }

    /// Looks a link up.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.links.get(&Self::key(a, b))
    }

    /// Enables or disables a link at runtime (HAEC reconfiguration).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoSuchLink`] if the link does not exist.
    pub fn set_enabled(&mut self, a: NodeId, b: NodeId, enabled: bool) -> Result<(), NetError> {
        match self.links.get_mut(&Self::key(a, b)) {
            Some(l) => {
                l.enabled = enabled;
                Ok(())
            }
            None => Err(NetError::NoSuchLink(a, b)),
        }
    }

    /// Total idle power of all enabled links — what reconfiguration
    /// saves when express links are switched off.
    pub fn idle_power(&self) -> Watts {
        Watts::new(self.links.values().filter(|l| l.enabled).map(|l| l.spec.idle_w).sum())
    }

    /// Costs a one-shot transfer of `bytes` from `a` to `b` over the
    /// direct enabled link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if no enabled direct link exists.
    pub fn transfer(
        &self,
        a: NodeId,
        b: NodeId,
        bytes: ByteCount,
    ) -> Result<(Duration, ResourceProfile), NetError> {
        let link = self.links.get(&Self::key(a, b)).filter(|l| l.enabled);
        match link {
            None => Err(NetError::NoRoute(a, b)),
            Some(l) => {
                let time = l.spec.transfer_time(bytes);
                let profile = ResourceProfile { nic_bytes: bytes, ..ResourceProfile::default() };
                Ok((time, profile))
            }
        }
    }

    /// The best (lowest-transfer-time) enabled link spec between two
    /// nodes, if any — used by the optimizer when multiple links exist
    /// after reconfiguration.
    pub fn best_spec(&self, a: NodeId, b: NodeId) -> Option<&LinkSpec> {
        self.link(a, b).filter(|l| l.enabled).map(|l| &l.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_and_transfer() {
        let mut t = Topology::new(2);
        t.connect(NodeId(0), NodeId(1), LinkClass::Ethernet10G);
        let (time, profile) = t.transfer(NodeId(0), NodeId(1), ByteCount::from_mib(125)).unwrap();
        // 125 MiB over 1.25 GB/s ≈ 105 ms.
        assert!(time.as_millis() > 100 && time.as_millis() < 120, "{time:?}");
        assert_eq!(profile.nic_bytes, ByteCount::from_mib(125));
    }

    #[test]
    fn links_are_bidirectional() {
        let mut t = Topology::new(2);
        t.connect(NodeId(1), NodeId(0), LinkClass::Optical);
        assert!(t.link(NodeId(0), NodeId(1)).is_some());
        assert!(t.transfer(NodeId(0), NodeId(1), ByteCount::new(1)).is_ok());
    }

    #[test]
    fn no_route_errors() {
        let t = Topology::new(3);
        let err = t.transfer(NodeId(0), NodeId(2), ByteCount::new(1)).unwrap_err();
        assert_eq!(err, NetError::NoRoute(NodeId(0), NodeId(2)));
        assert!(format!("{err}").contains("no enabled route"));
    }

    #[test]
    fn reconfiguration_toggles_links() {
        let mut t = Topology::new(2);
        t.connect(NodeId(0), NodeId(1), LinkClass::Wireless);
        t.set_enabled(NodeId(0), NodeId(1), false).unwrap();
        assert!(t.transfer(NodeId(0), NodeId(1), ByteCount::new(1)).is_err());
        t.set_enabled(NodeId(0), NodeId(1), true).unwrap();
        assert!(t.transfer(NodeId(0), NodeId(1), ByteCount::new(1)).is_ok());
        let err = t.set_enabled(NodeId(0), NodeId(1), true).and(t.set_enabled(NodeId(1), NodeId(1), true));
        assert!(err.is_err()); // self-link never exists
    }

    #[test]
    fn idle_power_tracks_enabled_links() {
        let mut t = Topology::new(3);
        t.connect(NodeId(0), NodeId(1), LinkClass::Optical); // 6 W
        t.connect(NodeId(1), NodeId(2), LinkClass::Ethernet10G); // 4 W
        assert!((t.idle_power().watts() - 10.0).abs() < 1e-12);
        t.set_enabled(NodeId(0), NodeId(1), false).unwrap();
        assert!((t.idle_power().watts() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn full_mesh_link_count() {
        let t = Topology::full_mesh(4, LinkClass::Ethernet10G);
        assert_eq!(t.link_count(), 6);
        assert_eq!(t.nodes(), 4);
    }

    #[test]
    fn class_speed_ordering() {
        // Optical fastest for bulk; intra-board fastest overall; 1GbE slowest.
        let mib = ByteCount::from_mib(64);
        let t_board = LinkSpec::default_for(LinkClass::IntraBoard).transfer_time(mib);
        let t_opt = LinkSpec::default_for(LinkClass::Optical).transfer_time(mib);
        let t_10g = LinkSpec::default_for(LinkClass::Ethernet10G).transfer_time(mib);
        let t_1g = LinkSpec::default_for(LinkClass::Ethernet1G).transfer_time(mib);
        assert!(t_board < t_opt && t_opt < t_10g && t_10g < t_1g);
    }

    #[test]
    #[should_panic(expected = "no self links")]
    fn self_link_panics() {
        Topology::new(2).connect(NodeId(1), NodeId(1), LinkClass::Optical);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_panics() {
        Topology::new(2).connect(NodeId(0), NodeId(5), LinkClass::Optical);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", NodeId(2)), "node2");
    }
}
