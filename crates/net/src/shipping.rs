//! The compressed-vs-raw shipping decision (experiment E3).
//!
//! The paper's worked example of case-by-case energy optimization (§IV):
//! *"an optimizer has to decide about sending intermediate data in a
//! compressed or uncompressed format to other nodes or even sockets on
//! the same board. In the former case, the system has to spend time and
//! energy for (de-)compression but saves time and energy for the
//! communication path. Since both cost factors are independent, the
//! optimizer has to decide on a case-by-case basis."*
//!
//! [`decide`] implements exactly that: it costs both alternatives in
//! time *and* energy and picks per the requested [`Objective`].

use crate::topology::LinkSpec;
use haec_energy::units::{ByteCount, Joules, Watts};
use std::fmt;
use std::time::Duration;

/// What the decision optimizes for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize transfer completion time.
    MinTime,
    /// Minimize total energy.
    MinEnergy,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::MinTime => f.write_str("min-time"),
            Objective::MinEnergy => f.write_str("min-energy"),
        }
    }
}

/// Compressor characteristics for the payload at hand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressorSpec {
    /// Achievable compression ratio (raw/compressed, > 1 compresses).
    pub ratio: f64,
    /// Compression throughput in bytes/second (of raw input).
    pub compress_bps: f64,
    /// Decompression throughput in bytes/second (of raw output).
    pub decompress_bps: f64,
    /// CPU power drawn by one core running the codec.
    pub core_power: Watts,
}

impl CompressorSpec {
    /// A lightweight (RLE/dictionary-class) codec: fast, modest ratio.
    pub fn lightweight(ratio: f64) -> Self {
        CompressorSpec { ratio, compress_bps: 3.0e9, decompress_bps: 5.0e9, core_power: Watts::new(12.0) }
    }

    /// A heavyweight (LZ-class) codec: slower, better ratio.
    pub fn heavyweight(ratio: f64) -> Self {
        CompressorSpec { ratio, compress_bps: 300.0e6, decompress_bps: 800.0e6, core_power: Watts::new(14.0) }
    }
}

/// Cost of one shipping alternative.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShipCost {
    /// End-to-end completion time (codec + wire).
    pub time: Duration,
    /// Total energy (codec CPU + wire).
    pub energy: Joules,
    /// Bytes that actually crossed the wire.
    pub wire_bytes: ByteCount,
}

/// The decision with both alternatives' costs, for inspection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShippingChoice {
    /// `true` if compression won.
    pub compress: bool,
    /// Cost of shipping raw.
    pub raw: ShipCost,
    /// Cost of shipping compressed.
    pub compressed: ShipCost,
}

impl ShippingChoice {
    /// The cost of the chosen alternative.
    pub fn chosen(&self) -> ShipCost {
        if self.compress {
            self.compressed
        } else {
            self.raw
        }
    }
}

/// Costs shipping `payload` raw over `link`.
pub fn cost_raw(payload: ByteCount, link: &LinkSpec) -> ShipCost {
    ShipCost { time: link.transfer_time(payload), energy: link.transfer_energy(payload), wire_bytes: payload }
}

/// Costs shipping `payload` compressed with `codec` over `link`
/// (compress at sender, wire, decompress at receiver — the codec phases
/// pipeline poorly for a single intermediate, so they serialize, which
/// matches how operators hand off whole intermediates).
pub fn cost_compressed(payload: ByteCount, codec: &CompressorSpec, link: &LinkSpec) -> ShipCost {
    let raw_bytes = payload.bytes() as f64;
    let wire = ByteCount::new((raw_bytes / codec.ratio).ceil() as u64);
    let t_compress = Duration::from_secs_f64(raw_bytes / codec.compress_bps);
    let t_decompress = Duration::from_secs_f64(raw_bytes / codec.decompress_bps);
    let t_wire = link.transfer_time(wire);
    let e_codec = codec.core_power * (t_compress + t_decompress);
    let e_wire = link.transfer_energy(wire);
    ShipCost { time: t_compress + t_wire + t_decompress, energy: e_codec + e_wire, wire_bytes: wire }
}

/// Decides raw vs compressed for `payload` over `link` under
/// `objective`.
pub fn decide(
    payload: ByteCount,
    codec: &CompressorSpec,
    link: &LinkSpec,
    objective: Objective,
) -> ShippingChoice {
    let raw = cost_raw(payload, link);
    let compressed = cost_compressed(payload, codec, link);
    let compress = match objective {
        Objective::MinTime => compressed.time < raw.time,
        Objective::MinEnergy => compressed.energy.joules() < raw.energy.joules(),
    };
    ShippingChoice { compress, raw, compressed }
}

/// The link bandwidth (bytes/s) at which raw and compressed shipping
/// take equal *time* — the crossover experiment E3 sweeps across. Below
/// this bandwidth, compression wins on time; above it, raw wins.
///
/// Returns `None` if compression never pays (ratio ≤ 1 or codec slower
/// than any wire).
pub fn time_crossover_bandwidth(codec: &CompressorSpec) -> Option<f64> {
    // t_raw(b) = B/bw ; t_comp(b) = B/c + B/d + (B/r)/bw
    // equal ⇔ bw* = (1 - 1/r) / (1/c + 1/d)
    if codec.ratio <= 1.0 {
        return None;
    }
    let codec_secs_per_byte = 1.0 / codec.compress_bps + 1.0 / codec.decompress_bps;
    let saved_fraction = 1.0 - 1.0 / codec.ratio;
    let bw = saved_fraction / codec_secs_per_byte;
    (bw > 0.0).then_some(bw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkClass;

    fn slow_link() -> LinkSpec {
        LinkSpec::default_for(LinkClass::Ethernet1G)
    }

    fn fast_link() -> LinkSpec {
        LinkSpec::default_for(LinkClass::IntraBoard)
    }

    #[test]
    fn slow_link_wants_compression() {
        let codec = CompressorSpec::lightweight(4.0);
        let choice = decide(ByteCount::from_mib(256), &codec, &slow_link(), Objective::MinTime);
        assert!(choice.compress, "raw {:?} vs comp {:?}", choice.raw.time, choice.compressed.time);
        assert!(choice.compressed.wire_bytes.bytes() < choice.raw.wire_bytes.bytes());
    }

    #[test]
    fn fast_link_wants_raw() {
        let codec = CompressorSpec::heavyweight(4.0);
        let choice = decide(ByteCount::from_mib(256), &codec, &fast_link(), Objective::MinTime);
        assert!(!choice.compress, "raw {:?} vs comp {:?}", choice.raw.time, choice.compressed.time);
    }

    #[test]
    fn objectives_can_disagree() {
        // Construct a case where compression saves energy but costs
        // time: cheap-energy codec, link with high pJ/B but high
        // bandwidth.
        let codec = CompressorSpec {
            ratio: 5.0,
            compress_bps: 1.0e9,
            decompress_bps: 2.0e9,
            core_power: Watts::new(2.0),
        };
        let link = LinkSpec {
            bandwidth: 20.0e9,
            latency: Duration::from_micros(1),
            pj_per_byte: 5000.0,
            idle_w: 1.0,
        };
        let payload = ByteCount::from_mib(256);
        let by_time = decide(payload, &codec, &link, Objective::MinTime);
        let by_energy = decide(payload, &codec, &link, Objective::MinEnergy);
        assert!(!by_time.compress, "fast wire → raw wins on time");
        assert!(by_energy.compress, "expensive wire joules → compression wins on energy");
    }

    #[test]
    fn crossover_bandwidth_separates_regimes() {
        let codec = CompressorSpec::lightweight(4.0);
        let bw = time_crossover_bandwidth(&codec).unwrap();
        let payload = ByteCount::from_gib(1);
        // Just below crossover: compression wins on time.
        let below = LinkSpec { bandwidth: bw * 0.5, latency: Duration::ZERO, pj_per_byte: 10.0, idle_w: 0.0 };
        assert!(decide(payload, &codec, &below, Objective::MinTime).compress);
        // Just above: raw wins.
        let above = LinkSpec { bandwidth: bw * 2.0, latency: Duration::ZERO, pj_per_byte: 10.0, idle_w: 0.0 };
        assert!(!decide(payload, &codec, &above, Objective::MinTime).compress);
    }

    #[test]
    fn no_crossover_without_compression_gain() {
        let codec = CompressorSpec::lightweight(1.0);
        assert_eq!(time_crossover_bandwidth(&codec), None);
        let codec = CompressorSpec::lightweight(0.8);
        assert_eq!(time_crossover_bandwidth(&codec), None);
    }

    #[test]
    fn higher_ratio_never_hurts() {
        let link = slow_link();
        let payload = ByteCount::from_mib(64);
        let lo = cost_compressed(payload, &CompressorSpec::lightweight(2.0), &link);
        let hi = cost_compressed(payload, &CompressorSpec::lightweight(8.0), &link);
        assert!(hi.time <= lo.time);
        assert!(hi.energy.joules() <= lo.energy.joules());
        assert!(hi.wire_bytes < lo.wire_bytes);
    }

    #[test]
    fn chosen_returns_winner() {
        let codec = CompressorSpec::lightweight(4.0);
        let c = decide(ByteCount::from_mib(64), &codec, &slow_link(), Objective::MinTime);
        assert_eq!(c.chosen(), c.compressed);
    }

    #[test]
    fn zero_payload_is_free() {
        let codec = CompressorSpec::lightweight(4.0);
        let c = decide(ByteCount::ZERO, &codec, &slow_link(), Objective::MinEnergy);
        assert_eq!(c.raw.energy, Joules::ZERO);
        assert_eq!(c.compressed.wire_bytes, ByteCount::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Objective::MinEnergy), "min-energy");
    }
}
