//! Property-based tests: kernel equivalence, aggregation strategy
//! agreement, join correctness against a nested-loop oracle.

use haec_columnar::value::CmpOp;
use haec_exec::agg::{group_aggregate, parallel_group_sum, SyncStrategy};
use haec_exec::join::{sort_merge_join, HashJoin};
use haec_exec::select::{select_positions, AdaptiveSelect, SelectKernel};
use proptest::prelude::*;

fn ops() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

proptest! {
    /// All three selection kernels return exactly the reference result.
    #[test]
    fn kernels_equivalent(data in proptest::collection::vec(-100i64..100, 0..500), op in ops(), lit in -120i64..120) {
        let want: Vec<u32> = data.iter().enumerate()
            .filter(|(_, &v)| op.eval(v, lit))
            .map(|(i, _)| i as u32)
            .collect();
        for kernel in SelectKernel::ALL {
            prop_assert_eq!(&select_positions(&data, op, lit, kernel), &want, "{}", kernel);
        }
    }

    /// The adaptive operator always returns the reference result, no
    /// matter which kernel it currently runs.
    #[test]
    fn adaptive_always_correct(batches in proptest::collection::vec(proptest::collection::vec(-50i64..50, 0..200), 1..10), lit in -60i64..60) {
        let mut op = AdaptiveSelect::new(CmpOp::Lt, lit);
        for data in &batches {
            let want: Vec<u32> = data.iter().enumerate()
                .filter(|(_, &v)| v < lit)
                .map(|(i, _)| i as u32)
                .collect();
            let (got, _) = op.run(data);
            prop_assert_eq!(got, want);
        }
    }

    /// Parallel group sums agree with a scalar fold for every strategy
    /// and thread count.
    #[test]
    fn parallel_sum_strategies_agree(
        n in 1usize..5000,
        groups in 1usize..16,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        let keys: Vec<u32> = (0..n).map(|i| ((i as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15) % groups as u64) as u32).collect();
        let values: Vec<i64> = (0..n).map(|i| ((i as i64) % 97) - 48).collect();
        let mut expected = vec![0i64; groups];
        for (k, v) in keys.iter().zip(&values) {
            expected[*k as usize] += v;
        }
        for s in SyncStrategy::ALL {
            let r = parallel_group_sum(&keys, &values, groups, threads, s);
            prop_assert_eq!(&r.sums, &expected, "{} x{}", s, threads);
        }
    }

    /// group_aggregate sums/counts match a HashMap oracle.
    #[test]
    fn group_aggregate_matches_oracle(pairs in proptest::collection::vec((-5i64..5, -100i64..100), 0..300)) {
        let keys: Vec<i64> = pairs.iter().map(|&(k, _)| k).collect();
        let vals: Vec<i64> = pairs.iter().map(|&(_, v)| v).collect();
        let grouped = group_aggregate(&keys, &vals);
        let mut oracle: std::collections::HashMap<i64, (u64, i64)> = Default::default();
        for (&k, &v) in keys.iter().zip(&vals) {
            let e = oracle.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += v;
        }
        prop_assert_eq!(grouped.len(), oracle.len());
        for (k, st) in &grouped {
            let &(c, s) = oracle.get(k).unwrap();
            prop_assert_eq!(st.count, c);
            prop_assert_eq!(st.sum, s);
        }
        // Sorted by key.
        prop_assert!(grouped.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// Hash join and sort-merge join agree with the nested-loop oracle.
    #[test]
    fn joins_match_nested_loop(
        left in proptest::collection::vec(-10i64..10, 0..60),
        right in proptest::collection::vec(-10i64..10, 0..60)
    ) {
        let mut oracle = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                if l == r {
                    oracle.push((i as u32, j as u32));
                }
            }
        }
        oracle.sort_unstable();
        let mut hj = HashJoin::build(&left).probe(&right);
        hj.sort_unstable();
        prop_assert_eq!(&hj, &oracle);
        let mut smj = sort_merge_join(&left, &right);
        smj.sort_unstable();
        prop_assert_eq!(&smj, &oracle);
    }
}
