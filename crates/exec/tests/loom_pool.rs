//! Model-checked verification of the worker-pool protocols: the
//! `JobToken` start/finish/cancel handshake with caller-runs, and the
//! `MorselGate` acquire/release/retarget semaphore.
//!
//! Only built under `RUSTFLAGS="--cfg haec_loom"`, which switches
//! `exec`'s primitives (see `crates/exec/src/sync.rs`) onto the `loom`
//! shim so `loom::model` can enumerate thread interleavings. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg haec_loom" cargo test -p haec-exec --test loom_pool --release
//! ```
#![cfg(haec_loom)]

use haec_exec::pool::{MorselGate, RunSpec, WorkerPool};
use haec_exec::prelude::Morsel;
use loom::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The full token protocol on a live pool: submit, worker + caller race
/// to drain, cancel/settle, fold. Every interleaving must produce the
/// exact sum and tear the pool down cleanly (a lost shutdown wakeup or
/// a stuck join would surface as a model deadlock).
#[test]
fn token_protocol_sums_under_all_interleavings() {
    let report = loom::model(|| {
        let pool = WorkerPool::new(1);
        let data = [1i64, 2];
        let sum = pool.run(
            data.len(),
            RunSpec::new(2, 1),
            |m: Morsel| data[m.start..m.end].iter().sum::<i64>(),
            |a, b| a + b,
            0i64,
        );
        assert_eq!(sum, 3);
        assert_eq!(pool.threads_spawned(), 1, "queries must not create threads");
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// Caller-runs liveness: with more units granted than workers exist the
/// job must still complete in every schedule — the caller's inline
/// drain guarantees progress even when the pool never helps.
#[test]
fn caller_runs_completes_on_saturated_pool() {
    let report = loom::model(|| {
        let pool = WorkerPool::new(1);
        let data = [1i64, 2, 3];
        let sum = pool.run(
            data.len(),
            RunSpec::new(3, 1),
            |m: Morsel| data[m.start..m.end].iter().sum::<i64>(),
            |a, b| a + b,
            0i64,
        );
        assert_eq!(sum, 6);
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// A panicking unit cancels the job (the payload resurfaces from
/// `run`), and the pool survives to serve the next job — in every
/// interleaving, including the ones where the worker picks up the task
/// before, after, or never.
#[test]
fn unit_panic_cancels_job_and_pool_survives() {
    let report = loom::model(|| {
        let pool = WorkerPool::new(1);
        let failed = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                2,
                RunSpec::new(2, 1),
                |m: Morsel| {
                    assert!(m.start != 0, "seeded unit failure");
                    1i64
                },
                |a, b| a + b,
                0i64,
            )
        }));
        assert!(failed.is_err(), "the unit panic must resurface");
        let ok = pool.run(1, RunSpec::new(2, 1), |_m: Morsel| 1i64, |a, b| a + b, 0i64);
        assert_eq!(ok, 1, "pool must stay serviceable after a job panic");
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// The gate's budget is a hard bound: two units racing one permit can
/// never both be in flight, in any schedule.
#[test]
fn gate_budget_is_never_exceeded() {
    let report = loom::model(|| {
        let gate = MorselGate::new(1);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                loom::thread::spawn(move || {
                    let _permit = gate.acquire();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gate.high_water(), 1, "budget 1 must never admit 2");
        assert_eq!(gate.inflight(), 0, "all permits must be returned");
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// Retargeting the budget mid-race: raising it must wake blocked units
/// (a lost wakeup would deadlock the model), the new bound must hold,
/// and everything drains.
#[test]
fn gate_retarget_wakes_blocked_and_bounds_hold() {
    let report = loom::model(|| {
        let gate = MorselGate::new(1);
        let units: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                loom::thread::spawn(move || {
                    let _permit = gate.acquire();
                })
            })
            .collect();
        let retarget = {
            let gate = Arc::clone(&gate);
            loom::thread::spawn(move || gate.set_budget(2))
        };
        for h in units {
            h.join().unwrap();
        }
        retarget.join().unwrap();
        assert!(gate.high_water() <= 2, "in-flight exceeded every budget it ran under");
        assert_eq!(gate.budget(), 2);
        assert_eq!(gate.inflight(), 0);
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}
