//! # haec-exec
//!
//! Vectorized, adaptive, energy-metered query operators — the execution
//! engine of the `haecdb` reproduction of *Lehner, "Energy-Efficient
//! In-Memory Database Computing" (DATE 2013)*.
//!
//! What the paper asks of "customized plan operators" (§IV.B) maps onto
//! this crate as follows:
//!
//! * **Reconfigurable selection** — [`select`] implements the branching /
//!   predicated / bitwise kernels of Ross (TODS'04) and an
//!   [`select::AdaptiveSelect`] operator that switches kernels as observed
//!   selectivity drifts.
//! * **Synchronization spectrum** — [`agg`] implements parallel grouped
//!   aggregation under mutex / atomic / optimistic (TSX-analogue) /
//!   partitioned strategies (experiment E4).
//! * **Morsel-driven parallelism** — [`morsel`] load-balances row ranges
//!   over real threads; [`pool`] hosts them on one persistent shared
//!   [`pool::WorkerPool`] whose per-query parallelism grant and
//!   fleet-wide in-flight budget ([`pool::MorselGate`]) are the knobs
//!   the energy governor turns.
//! * **Joins** — [`join`] provides hash and sort-merge equi-joins.
//! * **Metering** — every operator reports [`metrics::OpStats`] with a
//!   [`haec_energy::ResourceProfile`] so the energy layer can charge
//!   joules for what actually ran.
//!
//! ## Example
//!
//! ```
//! use haec_exec::prelude::*;
//! use haec_columnar::prelude::*;
//!
//! // σ(amount < 100) → Σ amount, with per-operator metering.
//! let chunk = Chunk::new(vec![
//!     ("amount".into(), (0i64..1000).collect::<Vec<_>>().into_iter().collect::<Column>()),
//! ]).unwrap();
//! let mut pipeline = Pipeline::new();
//! pipeline.push(FilterOp::new("amount", CmpOp::Lt, 100));
//! pipeline.push(AggregateOp::global("amount", AggKind::Sum));
//! let (result, stats) = pipeline.run(&chunk).unwrap();
//! assert_eq!(result.row(0).unwrap()[0].as_float(), Some(4950.0));
//! assert!(stats.iter().all(|s| s.profile.cpu_cycles.count() > 0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod agg;
pub mod cancel;
pub mod join;
pub mod metrics;
pub mod morsel;
pub mod pipeline;
pub mod pool;
pub mod select;
pub(crate) mod sync;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::agg::{
        aggregate, group_aggregate, parallel_group_sum, predicted_speedup, AggKind, AggState,
        ParallelAggReport, SyncStrategy,
    };
    pub use crate::cancel::CancelToken;
    pub use crate::join::{hash_join_metered, sort_merge_join, HashJoin};
    pub use crate::metrics::OpStats;
    pub use crate::morsel::{parallel_morsels, Morsel, MorselDispenser};
    pub use crate::pipeline::{AggregateOp, ExecError, FilterOp, Operator, Pipeline, ProjectOp};
    pub use crate::pool::{ExecOpts, MorselGate, MorselPermit, RunSpec, WorkerPool};
    pub use crate::select::{select_metered, select_positions, AdaptiveSelect, SelectKernel};
}

pub use agg::{AggKind, AggState, SyncStrategy};
pub use cancel::CancelToken;
pub use metrics::OpStats;
pub use pipeline::{ExecError, Pipeline};
pub use pool::{ExecOpts, MorselGate, RunSpec, WorkerPool};
pub use select::{AdaptiveSelect, SelectKernel};
