//! Selection kernels and the adaptive (reconfigurable) selection operator.
//!
//! The paper (§IV.B) calls for operators that "quickly adapt to changing
//! data characteristics … selectivity factors significantly impact the
//! success of branch prediction forcing the operator to switch between
//! different implementations", citing Ross (TODS'04). This module
//! implements the three classic kernels with genuinely different
//! microarchitectural behaviour, plus an operator that switches between
//! them at run time:
//!
//! * [`SelectKernel::Branching`] — one conditional branch per row; fast
//!   when the branch predictor wins (selectivity near 0 or 1).
//! * [`SelectKernel::Predicated`] — branch-free cursor bump; constant
//!   cost regardless of selectivity.
//! * [`SelectKernel::Bitwise`] — two phases: build 64-row match masks
//!   with a tight auto-vectorizable loop (the portable SIMD stand-in),
//!   then extract positions with `trailing_zeros`; cost ≈ n/64 + hits.

use crate::metrics::OpStats;
use haec_columnar::bitmap::Bitmap;
use haec_columnar::value::CmpOp;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::units::{ByteCount, Cycles};
use haec_energy::ResourceProfile;
use std::fmt;
use std::time::Instant;

/// The selection implementation to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SelectKernel {
    /// If-based loop (branch per row).
    Branching,
    /// Branch-free cursor bump.
    #[default]
    Predicated,
    /// 64-lane mask construction + position extraction.
    Bitwise,
}

impl SelectKernel {
    /// All kernels in canonical order.
    pub const ALL: [SelectKernel; 3] =
        [SelectKernel::Branching, SelectKernel::Predicated, SelectKernel::Bitwise];
}

impl fmt::Display for SelectKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SelectKernel::Branching => "branching",
            SelectKernel::Predicated => "predicated",
            SelectKernel::Bitwise => "bitwise",
        };
        f.write_str(s)
    }
}

#[inline]
fn cmp(op: CmpOp, v: i64, lit: i64) -> bool {
    match op {
        CmpOp::Eq => v == lit,
        CmpOp::Ne => v != lit,
        CmpOp::Lt => v < lit,
        CmpOp::Le => v <= lit,
        CmpOp::Gt => v > lit,
        CmpOp::Ge => v >= lit,
    }
}

/// Runs `data[i] op literal` with the chosen kernel, returning matching
/// row positions (ascending).
pub fn select_positions(data: &[i64], op: CmpOp, literal: i64, kernel: SelectKernel) -> Vec<u32> {
    assert!(data.len() <= u32::MAX as usize, "chunk too large for u32 positions");
    match kernel {
        SelectKernel::Branching => select_branching(data, op, literal),
        SelectKernel::Predicated => select_predicated(data, op, literal),
        SelectKernel::Bitwise => select_bitwise(data, op, literal),
    }
}

fn select_branching(data: &[i64], op: CmpOp, literal: i64) -> Vec<u32> {
    let mut out = Vec::new();
    match op {
        // Monomorphized hot loops so the branch is on the *data*, not on
        // the operator.
        CmpOp::Lt => {
            for (i, &v) in data.iter().enumerate() {
                if v < literal {
                    out.push(i as u32);
                }
            }
        }
        CmpOp::Ge => {
            for (i, &v) in data.iter().enumerate() {
                if v >= literal {
                    out.push(i as u32);
                }
            }
        }
        _ => {
            for (i, &v) in data.iter().enumerate() {
                if cmp(op, v, literal) {
                    out.push(i as u32);
                }
            }
        }
    }
    out
}

fn select_predicated(data: &[i64], op: CmpOp, literal: i64) -> Vec<u32> {
    let mut out = vec![0u32; data.len()];
    let mut k = 0usize;
    match op {
        CmpOp::Lt => {
            for (i, &v) in data.iter().enumerate() {
                out[k] = i as u32;
                k += (v < literal) as usize;
            }
        }
        CmpOp::Ge => {
            for (i, &v) in data.iter().enumerate() {
                out[k] = i as u32;
                k += (v >= literal) as usize;
            }
        }
        _ => {
            for (i, &v) in data.iter().enumerate() {
                out[k] = i as u32;
                k += cmp(op, v, literal) as usize;
            }
        }
    }
    out.truncate(k);
    out
}

fn select_bitwise(data: &[i64], op: CmpOp, literal: i64) -> Vec<u32> {
    let mut out = Vec::new();
    let mut base = 0usize;
    for block in data.chunks(64) {
        let mut mask = 0u64;
        match op {
            CmpOp::Lt => {
                for (j, &v) in block.iter().enumerate() {
                    mask |= ((v < literal) as u64) << j;
                }
            }
            CmpOp::Ge => {
                for (j, &v) in block.iter().enumerate() {
                    mask |= ((v >= literal) as u64) << j;
                }
            }
            _ => {
                for (j, &v) in block.iter().enumerate() {
                    mask |= (cmp(op, v, literal) as u64) << j;
                }
            }
        }
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            out.push((base + j) as u32);
            mask &= mask - 1;
        }
        base += block.len();
    }
    out
}

/// Runs a selection and returns positions together with metering
/// information (modelled cycles from the calibrated constants, plus the
/// measured wall time for experiments that compare kernels for real).
pub fn select_metered(
    data: &[i64],
    op: CmpOp,
    literal: i64,
    kernel: SelectKernel,
    costs: &KernelCosts,
) -> (Vec<u32>, OpStats) {
    let start = Instant::now();
    let positions = select_positions(data, op, literal, kernel);
    let wall = start.elapsed();
    let n = data.len() as u64;
    let sel = if n == 0 { 0.0 } else { positions.len() as f64 / n as f64 };
    let cycles = model_cycles(kernel, n, sel, costs);
    let profile = ResourceProfile {
        cpu_cycles: cycles,
        dram_read: ByteCount::new(n * 8),
        dram_written: ByteCount::new(positions.len() as u64 * 4),
        ..ResourceProfile::default()
    };
    let stats = OpStats { items_in: n, items_out: positions.len() as u64, profile, wall };
    (positions, stats)
}

/// The model cost (in cycles) of running `kernel` over `n` rows at
/// selectivity `sel` — used both for metering and for the adaptive
/// operator's switch decision.
pub fn model_cycles(kernel: SelectKernel, n: u64, sel: f64, costs: &KernelCosts) -> Cycles {
    match kernel {
        SelectKernel::Branching => costs.branching_cycles(n, sel),
        SelectKernel::Predicated => costs.cycles_for(Kernel::SelectPredicated, n),
        SelectKernel::Bitwise => {
            // Mask build is ~1 cycle/row vectorized; extraction costs per hit.
            let build = costs.cycles_for(Kernel::SelectBitwise, n);
            let extract = costs.cycles_for(Kernel::Materialize, (sel * n as f64) as u64);
            build + extract
        }
    }
}

/// Exponentially-weighted moving average used for selectivity tracking.
const EWMA_ALPHA: f64 = 0.3;

/// The reconfigurable selection operator: tracks observed selectivity
/// and switches to the kernel the cost model predicts cheapest for the
/// next batch.
///
/// ```
/// use haec_exec::select::AdaptiveSelect;
/// use haec_columnar::value::CmpOp;
///
/// let mut op = AdaptiveSelect::new(CmpOp::Lt, 10);
/// let batch: Vec<i64> = (0..1000).collect();
/// let (hits, _) = op.run(&batch);
/// assert_eq!(hits.len(), 10);
/// ```
#[derive(Debug)]
pub struct AdaptiveSelect {
    op: CmpOp,
    literal: i64,
    costs: KernelCosts,
    current: SelectKernel,
    ewma_sel: Option<f64>,
    switches: u64,
    batches: u64,
}

impl AdaptiveSelect {
    /// Creates an operator for `value op literal` with default cost
    /// constants.
    pub fn new(op: CmpOp, literal: i64) -> Self {
        AdaptiveSelect::with_costs(op, literal, KernelCosts::default_2013())
    }

    /// Creates an operator with explicit cost constants.
    pub fn with_costs(op: CmpOp, literal: i64, costs: KernelCosts) -> Self {
        AdaptiveSelect {
            op,
            literal,
            costs,
            current: SelectKernel::Bitwise,
            ewma_sel: None,
            switches: 0,
            batches: 0,
        }
    }

    /// The kernel that will run the next batch.
    pub fn current_kernel(&self) -> SelectKernel {
        self.current
    }

    /// Number of kernel switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of batches processed.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// The smoothed selectivity estimate, if any batch ran yet.
    pub fn estimated_selectivity(&self) -> Option<f64> {
        self.ewma_sel
    }

    /// Processes one batch: runs the current kernel, updates the
    /// selectivity estimate, and reconfigures for the next batch if the
    /// model predicts another kernel is cheaper.
    pub fn run(&mut self, data: &[i64]) -> (Vec<u32>, OpStats) {
        let (positions, stats) = select_metered(data, self.op, self.literal, self.current, &self.costs);
        self.batches += 1;
        if !data.is_empty() {
            let sel = positions.len() as f64 / data.len() as f64;
            let smoothed = match self.ewma_sel {
                None => sel,
                Some(prev) => EWMA_ALPHA * sel + (1.0 - EWMA_ALPHA) * prev,
            };
            self.ewma_sel = Some(smoothed);
            let best = self.best_kernel(smoothed, data.len() as u64);
            if best != self.current {
                self.current = best;
                self.switches += 1;
            }
        }
        (positions, stats)
    }

    /// The kernel the model predicts cheapest at `sel` for `n` rows.
    pub fn best_kernel(&self, sel: f64, n: u64) -> SelectKernel {
        SelectKernel::ALL
            .into_iter()
            .min_by(|&a, &b| {
                model_cycles(a, n, sel, &self.costs)
                    .count()
                    .cmp(&model_cycles(b, n, sel, &self.costs).count())
            })
            .expect("non-empty kernel list")
    }
}

/// Combines two position lists with logical AND (both sorted ascending).
pub fn intersect_positions(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Converts a position list into a bitmap of length `len`.
pub fn positions_to_bitmap(positions: &[u32], len: usize) -> Bitmap {
    let mut b = Bitmap::zeros(len);
    for &p in positions {
        b.set(p as usize, true);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(data: &[i64], op: CmpOp, lit: i64) -> Vec<u32> {
        data.iter().enumerate().filter(|(_, &v)| cmp(op, v, lit)).map(|(i, _)| i as u32).collect()
    }

    #[test]
    fn kernels_agree_with_reference() {
        let data: Vec<i64> = (0..1000).map(|i| (i * 7919) % 100).collect();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for lit in [-1, 0, 33, 50, 99, 100] {
                let want = reference(&data, op, lit);
                for kernel in SelectKernel::ALL {
                    let got = select_positions(&data, op, lit, kernel);
                    assert_eq!(got, want, "{kernel} {op} {lit}");
                }
            }
        }
    }

    #[test]
    fn empty_input() {
        for kernel in SelectKernel::ALL {
            assert!(select_positions(&[], CmpOp::Eq, 0, kernel).is_empty());
        }
    }

    #[test]
    fn boundary_sizes_around_word() {
        for n in [1usize, 63, 64, 65, 127, 128, 129] {
            let data: Vec<i64> = (0..n as i64).collect();
            let want = reference(&data, CmpOp::Ge, n as i64 / 2);
            for kernel in SelectKernel::ALL {
                assert_eq!(select_positions(&data, CmpOp::Ge, n as i64 / 2, kernel), want, "{kernel} n={n}");
            }
        }
    }

    #[test]
    fn metered_stats_sensible() {
        let data: Vec<i64> = (0..10_000).collect();
        let costs = KernelCosts::default_2013();
        let (pos, stats) = select_metered(&data, CmpOp::Lt, 100, SelectKernel::Predicated, &costs);
        assert_eq!(pos.len(), 100);
        assert_eq!(stats.items_in, 10_000);
        assert_eq!(stats.items_out, 100);
        assert_eq!(stats.profile.dram_read.bytes(), 80_000);
        assert!(stats.profile.cpu_cycles.count() > 0);
        assert!((stats.selectivity() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn model_prefers_branching_at_extremes_and_bitwise_or_predicated_mid() {
        let op = AdaptiveSelect::new(CmpOp::Lt, 0);
        let n = 100_000;
        // Near-zero selectivity: branching wins (perfect prediction) or
        // ties with bitwise; must not pick predicated.
        let k = op.best_kernel(0.0005, n);
        assert_ne!(k, SelectKernel::Predicated, "extreme-low: {k}");
        // Mid selectivity: branching must lose.
        let k = op.best_kernel(0.5, n);
        assert_ne!(k, SelectKernel::Branching, "mid: {k}");
    }

    #[test]
    fn adaptive_switches_with_drift() {
        // Data drifts from nothing-matches to half-matches: the operator
        // must reconfigure at least once.
        let mut op = AdaptiveSelect::new(CmpOp::Lt, 0);
        let batch_a: Vec<i64> = vec![100; 4096]; // sel = 0
        let batch_b: Vec<i64> = (0..4096).map(|i| if i % 2 == 0 { -1 } else { 100 }).collect(); // sel = 0.5
        for _ in 0..5 {
            op.run(&batch_a);
        }
        let k_low = op.current_kernel();
        for _ in 0..10 {
            op.run(&batch_b);
        }
        let k_mid = op.current_kernel();
        assert_ne!(k_mid, SelectKernel::Branching, "mid-selectivity kernel");
        assert!(op.switches() >= 1 || k_low == k_mid);
        assert_eq!(op.batches(), 15);
        let est = op.estimated_selectivity().unwrap();
        assert!(est > 0.2, "ewma tracked the drift: {est}");
    }

    #[test]
    fn adaptive_correctness_preserved_across_switches() {
        let mut op = AdaptiveSelect::new(CmpOp::Ge, 50);
        for round in 0..20 {
            let data: Vec<i64> = (0..1000).map(|i| (i + round * 13) % (100 + round)).collect();
            let (got, _) = op.run(&data);
            assert_eq!(got, reference(&data, CmpOp::Ge, 50), "round {round}");
        }
    }

    #[test]
    fn intersect_positions_works() {
        assert_eq!(intersect_positions(&[1, 3, 5, 7], &[3, 4, 5, 9]), vec![3, 5]);
        assert_eq!(intersect_positions(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_positions(&[2, 4], &[2, 4]), vec![2, 4]);
    }

    #[test]
    fn positions_to_bitmap_round_trip() {
        let b = positions_to_bitmap(&[0, 5, 9], 10);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 5, 9]);
    }

    #[test]
    fn kernel_display() {
        assert_eq!(format!("{}", SelectKernel::Bitwise), "bitwise");
    }
}
