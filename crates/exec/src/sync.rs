//! cfg-switchable concurrency primitives.
//!
//! By default these are the plain `std` types. Building with
//! `RUSTFLAGS="--cfg haec_loom"` swaps them for the `loom` shim's
//! model-checked doubles, so the `loom_*` integration tests can drive
//! the pool/gate/token protocols through `loom::model` while production
//! builds keep zero overhead. Protocol code in this crate must import
//! locks, atomics, and thread spawning from here — `haec-lint` enforces
//! that no `std::thread::spawn` appears outside this switch.

#[cfg(haec_loom)]
pub(crate) use loom::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};
#[cfg(haec_loom)]
pub(crate) use loom::thread;

#[cfg(not(haec_loom))]
pub(crate) use std::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(haec_loom))]
pub(crate) use std::thread;
