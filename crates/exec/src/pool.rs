//! The shared worker pool: persistent OS threads executing morsel jobs
//! from every concurrent query.
//!
//! [`crate::morsel::parallel_morsels`] used to spawn a fresh
//! `crossbeam::scope` per call — every query paid thread creation and
//! teardown, and two concurrent queries each brought their own private
//! threads, oversubscribing the machine instead of sharing it. This
//! module replaces that with the morsel-driven design of Leis et al.
//! (the HANA-side grounding the paper leans on): a fixed set of workers
//! created **once**, a shared injector queue of *unit tasks*, and
//! per-query [`MorselDispenser`]s.
//!
//! A query submits its job as `dop − 1` unit tasks (its *parallelism
//! grant*) and drains the dispenser inline on its own thread (the
//! caller-runs policy: a query always makes progress even when every
//! worker is busy, and a worker that submits a nested job can never
//! deadlock). Each unit task attaches to the job's dispenser and pulls
//! morsels until the domain is exhausted — an idle worker popping the
//! queue attaches to *whatever query* is next, which is exactly
//! "idle workers steal across queries".
//!
//! Scheduling knobs surface as data, not policy, so the energy governor
//! can drive them (see `haec-sched`):
//!
//! * the **grant** (`dop`) bounds how many workers may serve one query;
//! * a [`MorselGate`] bounds how many morsels may be **in flight across
//!   all queries** — the fleet-wide throttle an
//!   energy-cap governor maps a power budget onto.
//!
//! # Safety model
//!
//! Unit tasks reference the submitting call's stack frame (the closure,
//! the dispenser, the result vector), erased to a raw pointer so the
//! long-lived workers can hold them. Soundness comes from the
//! `JobToken` start/finish protocol: a worker marks a task *started*
//! under the token lock before touching the job, and the submitting
//! call, before returning (or unwinding), marks the token *cancelled*
//! and waits until every started task has finished. A task popped after
//! cancellation observes the flag under the same lock and never
//! dereferences the job pointer. This is the same scheme rayon uses for
//! scoped jobs on a persistent pool.

use crate::cancel::CancelToken;
use crate::morsel::{Morsel, MorselDispenser, DEFAULT_MORSEL_ROWS};
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Locks a mutex, recovering the guard if a panicking thread poisoned
/// it (the pool must stay serviceable after a job panics).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// MorselGate: the fleet-wide in-flight morsel budget
// ---------------------------------------------------------------------

/// A counting gate on concurrently in-flight morsels, shared by every
/// query of a server ("fleet-wide").
///
/// Each unit — pool worker or caller-inline — acquires one permit
/// before taking a morsel from its dispenser and releases it after
/// processing, so `inflight` is exactly the number of morsels being
/// executed this instant. [`MorselGate::acquire`] blocks while the
/// budget is exhausted: this is the mechanism an
/// [`EnergyCap`](https://en.wikipedia.org/wiki/Power_capping)-style
/// governor uses to hold a power budget — fewer concurrent morsel
/// streams, graceful throughput degradation, never an over-budget
/// burst. The high-water mark makes the claim checkable: it records the
/// maximum concurrency the gate ever granted.
pub struct MorselGate {
    inner: Mutex<GateInner>,
    cv: Condvar,
    high_water: AtomicUsize,
}

struct GateInner {
    inflight: usize,
    budget: usize,
}

impl MorselGate {
    /// Creates a gate allowing `budget` concurrent morsels.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero (a zero budget would deadlock every
    /// query instead of degrading gracefully).
    pub fn new(budget: usize) -> Arc<MorselGate> {
        assert!(budget > 0, "morsel budget must be positive");
        Arc::new(MorselGate {
            inner: Mutex::new(GateInner { inflight: 0, budget }),
            cv: Condvar::new(),
            high_water: AtomicUsize::new(0),
        })
    }

    /// Blocks until a permit is free, then claims it. Permits release
    /// on drop.
    pub fn acquire(&self) -> MorselPermit<'_> {
        let mut g = lock(&self.inner);
        while g.inflight >= g.budget {
            g = self.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        g.inflight += 1;
        self.high_water.fetch_max(g.inflight, Ordering::Relaxed);
        MorselPermit { gate: self }
    }

    /// Re-targets the budget (the governor recomputes it as load and
    /// estimates move). Raising it wakes blocked units; lowering it
    /// never revokes permits already out — the budget binds as running
    /// morsels drain.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn set_budget(&self, budget: usize) {
        assert!(budget > 0, "morsel budget must be positive");
        lock(&self.inner).budget = budget;
        self.cv.notify_all();
    }

    /// The current budget.
    pub fn budget(&self) -> usize {
        lock(&self.inner).budget
    }

    /// Morsels in flight right now.
    pub fn inflight(&self) -> usize {
        lock(&self.inner).inflight
    }

    /// The most morsels ever concurrently in flight — the observable
    /// the energy-cap acceptance gate checks against the budget.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for MorselGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = lock(&self.inner);
        f.debug_struct("MorselGate")
            .field("inflight", &g.inflight)
            .field("budget", &g.budget)
            .field("high_water", &self.high_water())
            .finish()
    }
}

/// An acquired in-flight slot; releases on drop.
#[derive(Debug)]
pub struct MorselPermit<'a> {
    gate: &'a MorselGate,
}

impl Drop for MorselPermit<'_> {
    fn drop(&mut self) {
        lock(&self.gate.inner).inflight -= 1;
        self.gate.cv.notify_one();
    }
}

// ---------------------------------------------------------------------
// Per-query execution options
// ---------------------------------------------------------------------

/// Per-query execution knobs: the surface the query server's governor
/// grant travels through to reach the engine.
#[derive(Clone, Debug)]
pub struct ExecOpts {
    /// Degree of parallelism: how many units (caller + pool workers)
    /// may serve this query. `0` means "engine default" (the pool
    /// width, capped by the machine model); an explicit value also opts
    /// the query into pooled dispatch regardless of table size.
    pub dop: usize,
    /// Target morsel size in rows. Controls how finely the delta tail
    /// is chunked into execution units (compressed main segments stay
    /// atomic — they are the storage-defined floor) and, above one
    /// segment's worth of rows, how many units are batched per
    /// dispenser grab. Smaller morsels interleave concurrent queries
    /// more fairly under contention; larger ones amortize dispatch.
    pub morsel_rows: usize,
    /// Fleet-wide in-flight morsel budget this query must respect,
    /// shared with every other query admitted by the same server.
    pub gate: Option<Arc<MorselGate>>,
    /// Cooperative cancel/deadline signal, polled at every morsel
    /// boundary; `None` means the query runs to completion.
    pub cancel: Option<CancelToken>,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts { dop: 0, morsel_rows: DEFAULT_MORSEL_ROWS, gate: None, cancel: None }
    }
}

impl ExecOpts {
    /// Options with an explicit parallelism grant.
    pub fn with_dop(dop: usize) -> Self {
        ExecOpts { dop, ..ExecOpts::default() }
    }

    /// Whether this query has been cancelled (explicitly or by
    /// deadline).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// Resolved per-job knobs handed to [`WorkerPool::run`]: unlike
/// [`ExecOpts`] (the engine-facing surface, where `dop: 0` means
/// "default" and the gate is owned), every field here is literal and
/// the gate is borrowed for the duration of the job.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec<'a> {
    /// Units working the job: the calling thread plus up to `dop − 1`
    /// pool workers. Must be at least 1.
    pub dop: usize,
    /// Rows per morsel grab.
    pub morsel_rows: usize,
    /// Fleet-wide in-flight morsel gate every unit must hold a permit
    /// from, if any.
    pub gate: Option<&'a MorselGate>,
    /// Cancel/deadline signal every unit polls between morsels, if any.
    pub cancel: Option<&'a CancelToken>,
}

impl RunSpec<'_> {
    /// An ungated spec.
    pub fn new(dop: usize, morsel_rows: usize) -> RunSpec<'static> {
        RunSpec { dop, morsel_rows, gate: None, cancel: None }
    }
}

// ---------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------

/// A persistent pool of worker threads executing unit tasks from all
/// queries (see the module docs for the design).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    /// OS threads ever created by this pool — the structural
    /// "zero thread creation per query after warmup" gate reads this.
    threads_spawned: AtomicUsize,
}

struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// A type-erased unit task: "attach to this job's dispenser and drain".
///
/// `job` points into the submitting call's stack frame; it is only
/// dereferenced after winning the started/cancelled race on `token`
/// (see the module-level safety model).
struct Task {
    job: *const (),
    // SAFETY: callers of this fn pointer must pass a `job` pointing to
    // the live `JobShared` instantiation it was monomorphized for —
    // upheld because both fields are only ever set together (in `run`)
    // and only invoked after winning `JobToken::try_start`.
    run: unsafe fn(*const ()),
    token: Arc<JobToken>,
}

// SAFETY: the raw job pointer crosses threads, but every dereference is
// guarded by the JobToken protocol — the pointee is alive whenever a
// task that won `try_start` runs, and the pointee's fields are shared
// safely (`W: Sync`, `M: Sync`, dispenser and results are themselves
// thread-safe; see `JobShared`).
unsafe impl Send for Task {}

/// The started/finished/cancelled handshake between one submitted job
/// and the workers that may pick its unit tasks up.
struct JobToken {
    state: Mutex<TokenState>,
    cv: Condvar,
    /// Set when a unit panicked: sibling units stop taking new morsels
    /// (checked lock-free between morsels).
    aborted: AtomicBool,
}

struct TokenState {
    cancelled: bool,
    started: usize,
    finished: usize,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

impl JobToken {
    fn new() -> Arc<JobToken> {
        Arc::new(JobToken {
            state: Mutex::new(TokenState { cancelled: false, started: 0, finished: 0, panic: None }),
            cv: Condvar::new(),
            aborted: AtomicBool::new(false),
        })
    }

    /// Worker side: try to transition a popped task to *started*.
    /// Returns `false` when the job was cancelled — the task must then
    /// drop without touching the job pointer.
    fn try_start(&self) -> bool {
        let mut st = lock(&self.state);
        if st.cancelled {
            return false;
        }
        st.started += 1;
        true
    }

    /// Worker side: record one unit done (with its panic payload, if
    /// any) and wake the submitter.
    fn finish(&self, panic: Option<Box<dyn Any + Send + 'static>>) {
        let mut st = lock(&self.state);
        if let Some(p) = panic {
            self.aborted.store(true, Ordering::Relaxed);
            st.cancelled = true;
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.finished += 1;
        self.cv.notify_all();
    }

    /// Submitter side: bar new starts, wait out in-flight units, and
    /// collect any panic. After this returns, no worker holds or will
    /// ever again dereference the job pointer.
    fn cancel_and_wait(&self) -> Option<Box<dyn Any + Send + 'static>> {
        let mut st = lock(&self.state);
        st.cancelled = true;
        while st.started > st.finished {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.panic.take()
    }
}

/// One submitted job: the dispenser all its units share, the borrowed
/// work/merge closures, and the partial-result sink.
struct JobShared<'a, T, W, M> {
    dispenser: MorselDispenser,
    work: &'a W,
    merge: &'a M,
    gate: Option<&'a MorselGate>,
    cancel: Option<&'a CancelToken>,
    results: Mutex<Vec<T>>,
    token: Arc<JobToken>,
}

impl<T, W, M> JobShared<'_, T, W, M>
where
    T: Send,
    W: Fn(Morsel) -> T + Sync,
    M: Fn(T, T) -> T + Send + Sync,
{
    /// One unit's drain loop: acquire a gate permit (when capped), pull
    /// a morsel, fold it in; stop when the domain is exhausted, a
    /// sibling unit panicked, or the query's cancel token fired (the
    /// "within one morsel" cancellation latency bound). Each permit
    /// covers exactly one in-flight morsel, so a cancelled unit can
    /// never leave a permit behind.
    fn run_unit(&self) {
        let mut acc: Option<T> = None;
        loop {
            if self.token.aborted.load(Ordering::Relaxed) {
                break;
            }
            if self.cancel.is_some_and(CancelToken::is_cancelled) {
                break;
            }
            fail::fail_point!("pool::dispatch");
            let _permit = self.gate.map(MorselGate::acquire);
            let Some(m) = self.dispenser.next_morsel() else { break };
            let v = (self.work)(m);
            acc = Some(match acc {
                None => v,
                Some(a) => (self.merge)(a, v),
            });
        }
        if let Some(a) = acc {
            lock(&self.results).push(a);
        }
    }
}

/// Monomorphized entry point a [`Task`] carries as a plain fn pointer.
///
/// # Safety
///
/// `p` must point to a live `JobShared<T, W, M>` — guaranteed by the
/// token protocol (only reached via a won [`JobToken::try_start`]).
unsafe fn run_trampoline<T, W, M>(p: *const ())
where
    T: Send,
    W: Fn(Morsel) -> T + Sync,
    M: Fn(T, T) -> T + Send + Sync,
{
    // SAFETY: per this fn's contract `p` is a live `JobShared<T, W, M>`;
    // the shared reference lives only for this call, during which the
    // submitter is parked in `cancel_and_wait` (or still draining) and
    // cannot move or free the pointee.
    let job = unsafe { &*(p as *const JobShared<'_, T, W, M>) };
    job.run_unit();
}

impl WorkerPool {
    /// Creates a pool with `workers` persistent threads. All worker
    /// threads exist after this returns; the pool never creates another
    /// ([`WorkerPool::threads_spawned`] is the proof).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> WorkerPool {
        assert!(workers > 0, "need at least one worker");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let spawned = AtomicUsize::new(0);
        let handles = (0..workers)
            .map(|i| {
                spawned.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("haec-worker-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles, workers, threads_spawned: spawned }
    }

    /// The process-wide pool every [`crate::morsel::parallel_morsels`]
    /// call shares, sized once from the hardware (so the engine never
    /// asks `available_parallelism` per query again).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Arc::new(WorkerPool::new(std::thread::available_parallelism().map_or(1, |n| n.get())))
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// OS threads this pool has ever created. Constant after
    /// construction — experiments assert it across a whole query sweep
    /// to prove queries stopped paying thread creation.
    pub fn threads_spawned(&self) -> usize {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Unit tasks currently queued (not yet picked up) — the injector
    /// depth, an admission-control signal.
    pub fn queued_tasks(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Runs `work` over all morsels of a `total`-row domain with up to
    /// `spec.dop` units (this thread plus `dop − 1` pool workers);
    /// per-unit partials combine with `merge` in unspecified order
    /// (`merge` must be commutative and associative, with `zero` as
    /// identity).
    ///
    /// The calling thread always participates (caller-runs), so the
    /// job completes even on a saturated pool, and a worker submitting
    /// a nested job cannot deadlock. When `spec.gate` is given, every
    /// unit holds one permit per in-flight morsel.
    ///
    /// # Panics
    ///
    /// Panics if `spec.dop` is zero, and re-raises the payload if any
    /// unit's `work` panicked (sibling units stop at the next morsel
    /// boundary; the pool itself survives).
    pub fn run<T, W, M>(&self, total: usize, spec: RunSpec<'_>, work: W, merge: M, zero: T) -> T
    where
        T: Send,
        W: Fn(Morsel) -> T + Sync,
        M: Fn(T, T) -> T + Send + Sync,
    {
        assert!(spec.dop > 0, "need at least one thread");
        if total == 0 {
            return zero;
        }
        let token = JobToken::new();
        let job = JobShared {
            dispenser: MorselDispenser::with_morsel_rows(total, spec.morsel_rows.max(1)),
            work: &work,
            merge: &merge,
            gate: spec.gate,
            cancel: spec.cancel,
            results: Mutex::new(Vec::new()),
            token: Arc::clone(&token),
        };
        // More units than workers (beyond the caller's own) can never
        // run; don't queue tasks that could only ever no-op.
        let helpers = (spec.dop - 1).min(self.workers);
        if helpers > 0 {
            // SAFETY: the cast only erases the generic instantiation;
            // every task queued below pairs this fn with a pointer to
            // `job`, which is exactly the `JobShared<T, W, M>` the
            // trampoline's contract requires.
            let run = run_trampoline::<T, W, M> as unsafe fn(*const ());
            let jobp = (&raw const job).cast::<()>();
            let mut q = lock(&self.shared.queue);
            for _ in 0..helpers {
                q.push_back(Task { job: jobp, run, token: Arc::clone(&token) });
            }
            drop(q);
            self.shared.cv.notify_all();
        }
        // Caller-runs: drain inline, then settle the helpers. The
        // cancel/wait MUST happen before this frame unwinds — helpers
        // borrow `job` — so the inline panic is caught and re-raised
        // only after the token settles.
        let inline = catch_unwind(AssertUnwindSafe(|| job.run_unit()));
        let helper_panic = token.cancel_and_wait();
        if let Err(p) = inline {
            resume_unwind(p);
        }
        if let Some(p) = helper_panic {
            resume_unwind(p);
        }
        let parts = job.results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        parts.into_iter().fold(zero, merge)
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("queued_tasks", &self.queued_tasks())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            // A worker that panicked outside a job already poisoned
            // nothing we rely on; shutdown still completes.
            let _ = h.join();
        }
    }
}

/// The worker loop: sleep on the injector, pop a unit task, run it
/// under the token handshake. A panic inside a unit is caught and
/// reported through the token — the worker thread itself never dies.
fn worker_main(shared: &PoolShared) {
    loop {
        let task = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = shared.cv.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if task.token.try_start() {
            // The failpoint sits inside the catch so an injected pickup
            // panic travels the same recovery path as a unit panic.
            let r = catch_unwind(AssertUnwindSafe(|| {
                fail::fail_point!("pool::pickup");
                // SAFETY: `try_start` won, so the submitter is still
                // inside `run` and `job` is alive until we report
                // `finish`.
                unsafe { (task.run)(task.job) }
            }));
            task.token.finish(r.err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pooled_sum_matches_serial() {
        let pool = WorkerPool::new(4);
        let data: Vec<i64> = (0..1_000_000).collect();
        let expected: i64 = data.iter().sum();
        for dop in [1, 2, 4, 9] {
            let sum = pool.run(
                data.len(),
                RunSpec::new(dop, 4096),
                |m: Morsel| data[m.start..m.end].iter().sum::<i64>(),
                |a, b| a + b,
                0i64,
            );
            assert_eq!(sum, expected, "dop={dop}");
        }
        assert_eq!(pool.threads_spawned(), 4);
    }

    #[test]
    fn empty_domain_returns_zero() {
        let pool = WorkerPool::new(2);
        let n = pool.run(0, RunSpec::new(8, 16), |_| 1u32, |a, b| a + b, 7u32);
        assert_eq!(n, 7, "zero identity returned untouched");
    }

    #[test]
    fn no_threads_created_after_warmup() {
        let pool = WorkerPool::new(3);
        let before = pool.threads_spawned();
        for _ in 0..50 {
            let s = pool.run(10_000, RunSpec::new(4, 128), |m: Morsel| m.len(), |a, b| a + b, 0usize);
            assert_eq!(s, 10_000);
        }
        assert_eq!(pool.threads_spawned(), before, "queries must not create threads");
        assert_eq!(before, 3);
    }

    #[test]
    fn gate_bounds_inflight_morsels() {
        let pool = WorkerPool::new(4);
        let gate = MorselGate::new(2);
        let live = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        let total = pool.run(
            64 * 64,
            RunSpec { dop: 5, morsel_rows: 64, gate: Some(&gate), cancel: None },
            |m: Morsel| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::yield_now();
                live.fetch_sub(1, Ordering::SeqCst);
                m.len()
            },
            |a, b| a + b,
            0usize,
        );
        assert_eq!(total, 64 * 64);
        assert!(peak.load(Ordering::SeqCst) <= 2, "observed concurrency above the budget");
        assert!(gate.high_water() <= 2, "gate granted beyond its budget");
        assert_eq!(gate.inflight(), 0, "all permits returned");
    }

    #[test]
    fn gate_budget_can_be_retargeted() {
        let gate = MorselGate::new(1);
        assert_eq!(gate.budget(), 1);
        gate.set_budget(8);
        assert_eq!(gate.budget(), 8);
        let a = gate.acquire();
        let b = gate.acquire();
        assert_eq!(gate.inflight(), 2);
        drop((a, b));
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "morsel budget must be positive")]
    fn zero_budget_rejected() {
        let _ = MorselGate::new(0);
    }

    #[test]
    fn panic_in_unit_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                100_000,
                RunSpec::new(3, 64),
                |m: Morsel| {
                    if m.start >= 4096 {
                        panic!("poisoned morsel");
                    }
                    m.len()
                },
                |a, b| a + b,
                0usize,
            )
        }));
        let payload = r.expect_err("the unit panic must reach the submitter");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "poisoned morsel");
        // The pool is still serviceable after the panic.
        let s = pool.run(10_000, RunSpec::new(3, 512), |m: Morsel| m.len(), |a, b| a + b, 0usize);
        assert_eq!(s, 10_000);
    }

    #[test]
    fn many_concurrent_jobs_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        let data: Vec<i64> = (0..200_000).collect();
        let expected: i64 = data.iter().sum();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let data = &data;
                s.spawn(move || {
                    for _ in 0..4 {
                        let sum = pool.run(
                            data.len(),
                            RunSpec::new(4, 1024),
                            |m: Morsel| data[m.start..m.end].iter().sum::<i64>(),
                            |a, b| a + b,
                            0i64,
                        );
                        assert_eq!(sum, expected);
                    }
                });
            }
        });
        assert_eq!(pool.threads_spawned(), 4);
    }

    #[test]
    fn cancel_stops_at_morsel_boundary() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let processed = AtomicUsize::new(0);
        let token_ref = &token;
        // The first processed morsel raises the flag: every unit must
        // stop before taking another, so far fewer than the 1024
        // available morsels run.
        let n = pool.run(
            64 * 1024,
            RunSpec { dop: 3, morsel_rows: 64, gate: None, cancel: Some(token_ref) },
            |m: Morsel| {
                processed.fetch_add(1, Ordering::SeqCst);
                token_ref.cancel();
                m.len()
            },
            |a, b| a + b,
            0usize,
        );
        let done = processed.load(Ordering::SeqCst);
        assert!((1..=4).contains(&done), "at most one in-flight morsel per unit: {done}");
        assert!(n < 64 * 1024, "cancelled run must not cover the domain");
        // The pool remains serviceable for the next (uncancelled) job.
        let s = pool.run(10_000, RunSpec::new(3, 512), |m: Morsel| m.len(), |a, b| a + b, 0usize);
        assert_eq!(s, 10_000);
    }

    #[test]
    fn gated_cancel_returns_all_permits() {
        let pool = WorkerPool::new(4);
        let gate = MorselGate::new(2);
        let token = CancelToken::new();
        token.cancel(); // cancelled before the job even starts
        let n = pool.run(
            64 * 64,
            RunSpec { dop: 4, morsel_rows: 64, gate: Some(&gate), cancel: Some(&token) },
            |m: Morsel| m.len(),
            |a, b| a + b,
            0usize,
        );
        assert_eq!(n, 0, "pre-cancelled job processes nothing");
        assert_eq!(gate.inflight(), 0, "no permit may outlive the job");
    }

    #[test]
    fn shutdown_joins_workers() {
        let pool = WorkerPool::new(2);
        let s = pool.run(1000, RunSpec::new(3, 10), |m: Morsel| m.len(), |a, b| a + b, 0usize);
        assert_eq!(s, 1000);
        drop(pool); // must not hang
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_dop_rejected() {
        WorkerPool::new(1).run(10, RunSpec::new(0, 1), |_| 0u32, |a, b| a + b, 0);
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let _ = WorkerPool::new(0);
    }
}
