//! Cooperative query cancellation and deadlines.
//!
//! A [`CancelToken`] is a cheap shared flag (plus an optional absolute
//! deadline) a query carries through [`crate::pool::ExecOpts`]. The
//! engine never preempts: every execution unit polls the token **at
//! each morsel boundary** — in the pool's drain loop and in the serial
//! fallback — so a cancelled scan, aggregate, join, or projection stops
//! within one morsel of the signal, releases its gate permit with the
//! morsel it holds, and unwinds through the normal result path (the
//! database layer converts the partial run into
//! `QueryError::Cancelled { partial_energy }`, billing the bytes the
//! query actually touched).
//!
//! Polling, not preemption, is what keeps the worker-pool token
//! protocol sound: a unit that observes cancellation exits its drain
//! loop exactly like an exhausted dispenser, so the submitted job
//! settles through the usual started/finished handshake and the pool
//! stays reusable.

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;
use std::fmt;
use std::time::{Duration, Instant};

/// A shared cancel flag with an optional deadline.
///
/// Clones observe the same flag: the server holds one clone to
/// [`cancel`](CancelToken::cancel), the execution units poll another
/// via [`is_cancelled`](CancelToken::is_cancelled). The deadline is
/// immutable after construction; once `Instant::now()` passes it the
/// token reads as cancelled without anyone calling `cancel`.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels explicitly.
    pub fn new() -> CancelToken {
        CancelToken { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that auto-cancels at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: Some(deadline) }) }
    }

    /// A token that auto-cancels `timeout` from now.
    pub fn deadline_in(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Raise the flag; every unit polling this token stops at its next
    /// morsel boundary. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the query should stop: explicitly cancelled or past its
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(all(test, not(haec_loom)))]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_shared_and_idempotent() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share one flag");
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn past_deadline_reads_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::deadline_in(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline().is_some());
    }
}
