//! Per-operator execution statistics.

use haec_energy::ResourceProfile;
use std::fmt;
use std::ops::Add;
use std::time::Duration;

/// What one operator invocation consumed and produced.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    /// Rows consumed.
    pub items_in: u64,
    /// Rows produced.
    pub items_out: u64,
    /// Modelled resource consumption (feeds the energy meter).
    pub profile: ResourceProfile,
    /// Measured wall-clock time of the real execution.
    pub wall: Duration,
}

impl OpStats {
    /// An empty stats record.
    pub fn new() -> Self {
        OpStats::default()
    }

    /// Output/input ratio (0 when nothing was consumed).
    pub fn selectivity(&self) -> f64 {
        if self.items_in == 0 {
            0.0
        } else {
            self.items_out as f64 / self.items_in as f64
        }
    }

    /// Measured throughput in input rows per second (`None` if the
    /// invocation was too fast to time).
    pub fn throughput(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        (secs > 0.0).then(|| self.items_in as f64 / secs)
    }
}

impl Add for OpStats {
    type Output = OpStats;
    fn add(self, rhs: OpStats) -> OpStats {
        OpStats {
            items_in: self.items_in + rhs.items_in,
            items_out: self.items_out + rhs.items_out,
            profile: self.profile + rhs.profile,
            wall: self.wall + rhs.wall,
        }
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in, {} out, {:.3} ms wall",
            self.items_in,
            self.items_out,
            self.wall.as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_energy::Cycles;

    #[test]
    fn selectivity_and_throughput() {
        let s =
            OpStats { items_in: 100, items_out: 25, wall: Duration::from_millis(10), ..Default::default() };
        assert_eq!(s.selectivity(), 0.25);
        let tp = s.throughput().unwrap();
        assert!((tp - 10_000.0).abs() < 1.0);
        assert_eq!(OpStats::new().selectivity(), 0.0);
        assert!(OpStats::new().throughput().is_none());
    }

    #[test]
    fn addition_merges() {
        let a = OpStats {
            items_in: 10,
            items_out: 5,
            profile: ResourceProfile::cpu(Cycles::new(100)),
            wall: Duration::from_micros(3),
        };
        let b = OpStats {
            items_in: 20,
            items_out: 1,
            profile: ResourceProfile::cpu(Cycles::new(50)),
            wall: Duration::from_micros(4),
        };
        let c = a + b;
        assert_eq!(c.items_in, 30);
        assert_eq!(c.items_out, 6);
        assert_eq!(c.profile.cpu_cycles, Cycles::new(150));
        assert_eq!(c.wall, Duration::from_micros(7));
    }

    #[test]
    fn display() {
        let s = OpStats { items_in: 1, items_out: 1, ..Default::default() };
        assert!(format!("{s}").contains("1 in"));
    }
}
