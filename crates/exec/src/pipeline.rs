//! A small composable operator pipeline over [`Chunk`]s.
//!
//! This is the push-free, batch-at-a-time spine used by the examples and
//! the `haecdb` facade: each operator consumes a chunk, produces a chunk
//! plus [`OpStats`], and the pipeline accumulates the per-operator
//! metering that the energy layer charges.

use crate::agg::{group_aggregate, AggKind, AggState};
use crate::metrics::OpStats;
use crate::select::AdaptiveSelect;
use haec_columnar::chunk::Chunk;
use haec_columnar::column::Column;
use haec_columnar::value::CmpOp;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::units::ByteCount;
use haec_energy::ResourceProfile;
use std::fmt;
use std::time::Instant;

/// Errors surfaced by pipeline execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A referenced column is missing from the input chunk.
    MissingColumn(
        /// The column name.
        String,
    ),
    /// A column has the wrong type for the operator.
    WrongType {
        /// The column name.
        column: String,
        /// What the operator needed.
        expected: &'static str,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingColumn(c) => write!(f, "missing column {c:?}"),
            ExecError::WrongType { column, expected } => {
                write!(f, "column {column:?} is not {expected}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A chunk-at-a-time operator.
pub trait Operator: fmt::Debug + Send {
    /// A short name for plan rendering.
    fn name(&self) -> &str;

    /// Processes one chunk.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the chunk does not match the operator's
    /// schema expectations.
    fn apply(&mut self, input: &Chunk) -> Result<(Chunk, OpStats), ExecError>;
}

/// Filter: keeps rows where `column op literal` (integer columns).
#[derive(Debug)]
pub struct FilterOp {
    column: String,
    select: AdaptiveSelect,
}

impl FilterOp {
    /// Creates a filter on an integer column.
    pub fn new(column: impl Into<String>, op: CmpOp, literal: i64) -> Self {
        FilterOp { column: column.into(), select: AdaptiveSelect::new(op, literal) }
    }

    /// The adaptive selection state (for inspection in experiments).
    pub fn select(&self) -> &AdaptiveSelect {
        &self.select
    }
}

impl Operator for FilterOp {
    fn name(&self) -> &str {
        "filter"
    }

    fn apply(&mut self, input: &Chunk) -> Result<(Chunk, OpStats), ExecError> {
        let col = input.column(&self.column).ok_or_else(|| ExecError::MissingColumn(self.column.clone()))?;
        let data = col
            .as_int64()
            .ok_or_else(|| ExecError::WrongType { column: self.column.clone(), expected: "int64" })?;
        let (positions, mut stats) = self.select.run(data);
        let idx: Vec<usize> = positions.iter().map(|&p| p as usize).collect();
        let start = Instant::now();
        let out = input.gather(&idx);
        stats.wall += start.elapsed();
        // Materialization traffic for the surviving rows.
        stats.profile.dram_written = ByteCount::new((out.size_bytes()) as u64);
        Ok((out, stats))
    }
}

/// Projection: keeps only the named columns, in order.
#[derive(Debug)]
pub struct ProjectOp {
    columns: Vec<String>,
}

impl ProjectOp {
    /// Creates a projection.
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ProjectOp { columns: columns.into_iter().map(Into::into).collect() }
    }
}

impl Operator for ProjectOp {
    fn name(&self) -> &str {
        "project"
    }

    fn apply(&mut self, input: &Chunk) -> Result<(Chunk, OpStats), ExecError> {
        let start = Instant::now();
        let mut cols = Vec::with_capacity(self.columns.len());
        for name in &self.columns {
            let col = input.column(name).ok_or_else(|| ExecError::MissingColumn(name.clone()))?;
            cols.push((name.clone(), col.clone()));
        }
        let out = Chunk::new(cols).expect("projection of valid chunk is valid");
        let stats = OpStats {
            items_in: input.rows() as u64,
            items_out: out.rows() as u64,
            profile: ResourceProfile {
                dram_read: ByteCount::new(out.size_bytes() as u64),
                ..ResourceProfile::default()
            },
            wall: start.elapsed(),
        };
        Ok((out, stats))
    }
}

/// Grouped (or global) aggregation over an integer value column.
#[derive(Debug)]
pub struct AggregateOp {
    group_by: Option<String>,
    value: String,
    kind: AggKind,
    costs: KernelCosts,
}

impl AggregateOp {
    /// Global aggregate of `value`.
    pub fn global(value: impl Into<String>, kind: AggKind) -> Self {
        AggregateOp { group_by: None, value: value.into(), kind, costs: KernelCosts::default_2013() }
    }

    /// Grouped aggregate of `value` by integer column `group_by`.
    pub fn grouped(group_by: impl Into<String>, value: impl Into<String>, kind: AggKind) -> Self {
        AggregateOp {
            group_by: Some(group_by.into()),
            value: value.into(),
            kind,
            costs: KernelCosts::default_2013(),
        }
    }
}

impl Operator for AggregateOp {
    fn name(&self) -> &str {
        "aggregate"
    }

    fn apply(&mut self, input: &Chunk) -> Result<(Chunk, OpStats), ExecError> {
        let start = Instant::now();
        let values = int_column(input, &self.value)?;
        let (out, groups) = match &self.group_by {
            None => {
                let mut st = AggState::empty();
                for &v in values {
                    st.update(v);
                }
                let result = st.value(self.kind).unwrap_or(f64::NAN);
                let chunk = Chunk::new(vec![(
                    format!("{}({})", self.kind, self.value),
                    vec![result].into_iter().collect::<Column>(),
                )])
                .expect("single column");
                (chunk, 1u64)
            }
            Some(g) => {
                let keys = int_column(input, g)?;
                let grouped = group_aggregate(keys, values);
                let key_col: Column =
                    grouped.iter().map(|&(k, _)| k).collect::<Vec<i64>>().into_iter().collect();
                let val_col: Column = grouped
                    .iter()
                    .map(|(_, s)| s.value(self.kind).unwrap_or(f64::NAN))
                    .collect::<Vec<f64>>()
                    .into_iter()
                    .collect();
                let n = grouped.len() as u64;
                let chunk = Chunk::new(vec![
                    (g.clone(), key_col),
                    (format!("{}({})", self.kind, self.value), val_col),
                ])
                .expect("two columns");
                (chunk, n)
            }
        };
        let n = values.len() as u64;
        let stats = OpStats {
            items_in: n,
            items_out: groups,
            profile: ResourceProfile {
                cpu_cycles: self.costs.cycles_for(Kernel::AggUpdate, n)
                    + if self.group_by.is_some() {
                        self.costs.cycles_for(Kernel::HashProbe, n)
                    } else {
                        haec_energy::Cycles::ZERO
                    },
                dram_read: ByteCount::new(n * if self.group_by.is_some() { 16 } else { 8 }),
                ..ResourceProfile::default()
            },
            wall: start.elapsed(),
        };
        Ok((out, stats))
    }
}

fn int_column<'c>(chunk: &'c Chunk, name: &str) -> Result<&'c [i64], ExecError> {
    chunk
        .column(name)
        .ok_or_else(|| ExecError::MissingColumn(name.to_string()))?
        .as_int64()
        .ok_or_else(|| ExecError::WrongType { column: name.to_string(), expected: "int64" })
}

/// A linear chain of operators.
///
/// ```
/// use haec_exec::pipeline::{FilterOp, Pipeline};
/// use haec_exec::agg::AggKind;
/// use haec_exec::pipeline::AggregateOp;
/// use haec_columnar::chunk::Chunk;
/// use haec_columnar::column::Column;
/// use haec_columnar::value::CmpOp;
///
/// let chunk = Chunk::new(vec![
///     ("v".into(), (0i64..100).collect::<Vec<_>>().into_iter().collect::<Column>()),
/// ]).unwrap();
/// let mut p = Pipeline::new();
/// p.push(FilterOp::new("v", CmpOp::Lt, 50));
/// p.push(AggregateOp::global("v", AggKind::Sum));
/// let (out, stats) = p.run(&chunk).unwrap();
/// assert_eq!(out.row(0).unwrap()[0].as_float(), Some((0..50).sum::<i64>() as f64));
/// assert_eq!(stats.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Pipeline {
    ops: Vec<Box<dyn Operator>>,
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Pipeline { ops: Vec::new() }
    }

    /// Appends an operator.
    pub fn push<O: Operator + 'static>(&mut self, op: O) -> &mut Self {
        self.ops.push(Box::new(op));
        self
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the pipeline has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Runs the chain over one chunk, returning the final chunk and the
    /// per-operator stats in order.
    ///
    /// # Errors
    ///
    /// Propagates the first operator error.
    pub fn run(&mut self, input: &Chunk) -> Result<(Chunk, Vec<OpStats>), ExecError> {
        let mut current = input.clone();
        let mut all = Vec::with_capacity(self.ops.len());
        for op in &mut self.ops {
            let (next, stats) = op.apply(&current)?;
            all.push(stats);
            current = next;
        }
        Ok((current, all))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> Chunk {
        Chunk::new(vec![
            ("region".into(), (0..1000).map(|i| (i % 4) as i64).collect::<Vec<_>>().into_iter().collect()),
            ("amount".into(), (0..1000).map(|i| i as i64).collect::<Vec<_>>().into_iter().collect()),
        ])
        .unwrap()
    }

    #[test]
    fn filter_then_project() {
        let mut p = Pipeline::new();
        p.push(FilterOp::new("amount", CmpOp::Lt, 10));
        p.push(ProjectOp::new(["amount"]));
        let (out, stats) = p.run(&orders()).unwrap();
        assert_eq!(out.rows(), 10);
        assert_eq!(out.width(), 1);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].items_out, 10);
    }

    #[test]
    fn grouped_aggregate() {
        let mut p = Pipeline::new();
        p.push(AggregateOp::grouped("region", "amount", AggKind::Count));
        let (out, _) = p.run(&orders()).unwrap();
        assert_eq!(out.rows(), 4);
        for i in 0..4 {
            assert_eq!(out.row(i).unwrap()[1].as_float(), Some(250.0));
        }
    }

    #[test]
    fn global_aggregate_kinds() {
        for (kind, want) in [
            (AggKind::Sum, (0..1000).sum::<i64>() as f64),
            (AggKind::Count, 1000.0),
            (AggKind::Min, 0.0),
            (AggKind::Max, 999.0),
            (AggKind::Avg, 499.5),
        ] {
            let mut p = Pipeline::new();
            p.push(AggregateOp::global("amount", kind));
            let (out, _) = p.run(&orders()).unwrap();
            assert_eq!(out.row(0).unwrap()[0].as_float(), Some(want), "{kind}");
        }
    }

    #[test]
    fn missing_column_error() {
        let mut p = Pipeline::new();
        p.push(FilterOp::new("nope", CmpOp::Eq, 1));
        let err = p.run(&orders()).unwrap_err();
        assert_eq!(err, ExecError::MissingColumn("nope".into()));
        assert!(format!("{err}").contains("missing column"));
    }

    #[test]
    fn wrong_type_error() {
        let chunk = Chunk::new(vec![("f".into(), vec![1.0f64].into_iter().collect())]).unwrap();
        let mut p = Pipeline::new();
        p.push(FilterOp::new("f", CmpOp::Eq, 1));
        let err = p.run(&chunk).unwrap_err();
        assert!(matches!(err, ExecError::WrongType { .. }));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new();
        assert!(p.is_empty());
        let (out, stats) = p.run(&orders()).unwrap();
        assert_eq!(out.rows(), 1000);
        assert!(stats.is_empty());
    }

    #[test]
    fn stats_chain_consistency() {
        let mut p = Pipeline::new();
        p.push(FilterOp::new("amount", CmpOp::Ge, 500));
        p.push(AggregateOp::grouped("region", "amount", AggKind::Sum));
        let (_, stats) = p.run(&orders()).unwrap();
        // Output of filter feeds aggregate.
        assert_eq!(stats[0].items_out, stats[1].items_in);
    }
}
