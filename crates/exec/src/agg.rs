//! Aggregation: scalar folds, hash group-by, and the four parallel
//! synchronization strategies of experiment E4.
//!
//! The paper (§III) uses the aggregation operator as its synchronization
//! case study: "splitting an aggregation operator … into hundreds of
//! different threads eventually implies high synchronization overhead,
//! because every data stream may have database entries of different
//! customer groups", and points at optimistic primitives (Intel TSX) as
//! the way out. [`SyncStrategy`] implements the whole spectrum:
//!
//! * [`SyncStrategy::Mutex`] — a blocking lock per group (the "locks and
//!   latches" status quo),
//! * [`SyncStrategy::Atomic`] — wait-free `fetch_add` per update,
//! * [`SyncStrategy::Optimistic`] — CAS retry loops, the software
//!   analogue of transactional-memory commits,
//! * [`SyncStrategy::Partitioned`] — thread-local partials merged at the
//!   end (no shared writes at all).

use crate::metrics::OpStats;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::units::ByteCount;
use haec_energy::ResourceProfile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::time::Instant;

/// The aggregate function to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Row count.
    Count,
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean.
    Avg,
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// Accumulator state for one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggState {
    /// Rows folded in.
    pub count: u64,
    /// Running sum.
    pub sum: i64,
    /// Running minimum.
    pub min: i64,
    /// Running maximum.
    pub max: i64,
}

impl AggState {
    /// The identity state.
    pub fn empty() -> Self {
        AggState { count: 0, sum: 0, min: i64::MAX, max: i64::MIN }
    }

    /// Folds one value in.
    #[inline]
    pub fn update(&mut self, v: i64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `n` copies of `v` in without iterating — the run/constant
    /// fast path of compression-aware aggregation (one multiply per RLE
    /// run, one call per sentinel-filled segment).
    pub fn update_repeated(&mut self, v: i64, n: usize) {
        if n == 0 {
            return;
        }
        self.count += n as u64;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n as i64));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another state in (parallel partial merge).
    pub fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Extracts the requested aggregate (float to cover `Avg`).
    ///
    /// Returns `None` for min/max/avg of an empty group.
    pub fn value(&self, kind: AggKind) -> Option<f64> {
        match kind {
            AggKind::Count => Some(self.count as f64),
            AggKind::Sum => Some(self.sum as f64),
            AggKind::Min => (self.count > 0).then_some(self.min as f64),
            AggKind::Max => (self.count > 0).then_some(self.max as f64),
            AggKind::Avg => (self.count > 0).then(|| self.sum as f64 / self.count as f64),
        }
    }
}

impl Default for AggState {
    fn default() -> Self {
        AggState::empty()
    }
}

/// Folds a whole slice into one state.
pub fn aggregate(data: &[i64]) -> AggState {
    let mut s = AggState::empty();
    for &v in data {
        s.update(v);
    }
    s
}

/// Hash group-by aggregation over arbitrary `i64` keys, returning
/// `(key, state)` pairs sorted by key for deterministic output.
pub fn group_aggregate(keys: &[i64], values: &[i64]) -> Vec<(i64, AggState)> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    let mut table: HashMap<i64, AggState> = HashMap::new();
    for (&k, &v) in keys.iter().zip(values) {
        table.entry(k).or_default().update(v);
    }
    let mut out: Vec<(i64, AggState)> = table.into_iter().collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Metered variant of [`group_aggregate`].
pub fn group_aggregate_metered(
    keys: &[i64],
    values: &[i64],
    costs: &KernelCosts,
) -> (Vec<(i64, AggState)>, OpStats) {
    let start = Instant::now();
    let out = group_aggregate(keys, values);
    let wall = start.elapsed();
    let n = keys.len() as u64;
    let profile = ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::HashProbe, n) + costs.cycles_for(Kernel::AggUpdate, n),
        dram_read: ByteCount::new(n * 16),
        dram_written: ByteCount::new(out.len() as u64 * 40),
        ..ResourceProfile::default()
    };
    (out.clone(), OpStats { items_in: n, items_out: out.len() as u64, profile, wall })
}

/// Synchronization strategy for parallel grouped aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SyncStrategy {
    /// One blocking lock per group.
    Mutex,
    /// Wait-free `fetch_add` per update.
    Atomic,
    /// CAS retry loop per update (optimistic, TSX-analogue).
    Optimistic,
    /// Thread-local partials, merged once at the end.
    Partitioned,
}

impl SyncStrategy {
    /// All strategies in canonical order.
    pub const ALL: [SyncStrategy; 4] =
        [SyncStrategy::Mutex, SyncStrategy::Atomic, SyncStrategy::Optimistic, SyncStrategy::Partitioned];
}

impl fmt::Display for SyncStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SyncStrategy::Mutex => "mutex",
            SyncStrategy::Atomic => "atomic",
            SyncStrategy::Optimistic => "optimistic",
            SyncStrategy::Partitioned => "partitioned",
        };
        f.write_str(s)
    }
}

/// Report from a [`parallel_group_sum`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct ParallelAggReport {
    /// Per-group sums.
    pub sums: Vec<i64>,
    /// Threads used.
    pub threads: usize,
    /// Measured wall time.
    pub wall: std::time::Duration,
    /// CAS retries (optimistic strategy only).
    pub retries: u64,
}

/// Sums `values` into `groups` buckets selected by `keys` (each in
/// `[0, groups)`), using `threads` real OS threads synchronized by
/// `strategy`. Rows are dealt to threads round-robin in fixed-size
/// morsels so every thread touches every group — the adversarial layout
/// the paper describes.
///
/// # Panics
///
/// Panics if `keys.len() != values.len()`, `groups == 0`, `threads == 0`,
/// or any key is out of range.
pub fn parallel_group_sum(
    keys: &[u32],
    values: &[i64],
    groups: usize,
    threads: usize,
    strategy: SyncStrategy,
) -> ParallelAggReport {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    assert!(groups > 0, "need at least one group");
    assert!(threads > 0, "need at least one thread");
    assert!(keys.iter().all(|&k| (k as usize) < groups), "key out of range");

    const MORSEL: usize = 1024;
    let cursor = AtomicUsize::new(0);
    let n = keys.len();
    let start = Instant::now();
    let retries = AtomicUsize::new(0);

    let sums: Vec<i64> = match strategy {
        SyncStrategy::Mutex => {
            let cells: Vec<Mutex<i64>> = (0..groups).map(|_| Mutex::new(0)).collect();
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| loop {
                        let lo = cursor.fetch_add(MORSEL, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + MORSEL).min(n);
                        for i in lo..hi {
                            *cells[keys[i] as usize].lock() += values[i];
                        }
                    });
                }
            })
            .expect("aggregation worker panicked");
            cells.into_iter().map(|m| m.into_inner()).collect()
        }
        SyncStrategy::Atomic => {
            let cells: Vec<AtomicI64> = (0..groups).map(|_| AtomicI64::new(0)).collect();
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| loop {
                        let lo = cursor.fetch_add(MORSEL, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + MORSEL).min(n);
                        for i in lo..hi {
                            cells[keys[i] as usize].fetch_add(values[i], Ordering::Relaxed);
                        }
                    });
                }
            })
            .expect("aggregation worker panicked");
            cells.into_iter().map(AtomicI64::into_inner).collect()
        }
        SyncStrategy::Optimistic => {
            let cells: Vec<AtomicI64> = (0..groups).map(|_| AtomicI64::new(0)).collect();
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| {
                        let mut local_retries = 0usize;
                        loop {
                            let lo = cursor.fetch_add(MORSEL, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + MORSEL).min(n);
                            for i in lo..hi {
                                let cell = &cells[keys[i] as usize];
                                let mut cur = cell.load(Ordering::Relaxed);
                                loop {
                                    match cell.compare_exchange_weak(
                                        cur,
                                        cur.wrapping_add(values[i]),
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    ) {
                                        Ok(_) => break,
                                        Err(observed) => {
                                            local_retries += 1;
                                            cur = observed;
                                        }
                                    }
                                }
                            }
                        }
                        retries.fetch_add(local_retries, Ordering::Relaxed);
                    });
                }
            })
            .expect("aggregation worker panicked");
            cells.into_iter().map(AtomicI64::into_inner).collect()
        }
        SyncStrategy::Partitioned => {
            let partials: Vec<Mutex<Vec<i64>>> =
                (0..threads).map(|_| Mutex::new(vec![0i64; groups])).collect();
            crossbeam::scope(|scope| {
                for t in 0..threads {
                    let partial = &partials[t];
                    let cursor = &cursor;
                    scope.spawn(move |_| {
                        let mut local = vec![0i64; groups];
                        loop {
                            let lo = cursor.fetch_add(MORSEL, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + MORSEL).min(n);
                            for i in lo..hi {
                                local[keys[i] as usize] += values[i];
                            }
                        }
                        *partial.lock() = local;
                    });
                }
            })
            .expect("aggregation worker panicked");
            let mut sums = vec![0i64; groups];
            for p in partials {
                for (s, v) in sums.iter_mut().zip(p.into_inner()) {
                    *s += v;
                }
            }
            sums
        }
    };

    ParallelAggReport {
        sums,
        threads,
        wall: start.elapsed(),
        retries: retries.load(Ordering::Relaxed) as u64,
    }
}

/// First-order analytic speedup model for thread counts beyond the
/// physical cores of the reproduction machine (documented in the exps module docs;
/// used by experiment E4's extrapolated columns).
///
/// The model is Amdahl with a strategy-specific contention term that
/// grows with threads-per-group:
/// `speedup(t) = t / (1 + serial·(t-1) + contention·(t-1)/groups)`.
pub fn predicted_speedup(strategy: SyncStrategy, threads: usize, groups: usize) -> f64 {
    let t = threads as f64;
    let g = groups.max(1) as f64;
    let (serial, contention) = match strategy {
        SyncStrategy::Mutex => (0.002, 8.0),
        SyncStrategy::Atomic => (0.001, 1.5),
        SyncStrategy::Optimistic => (0.001, 2.5),
        SyncStrategy::Partitioned => (0.004, 0.0),
    };
    t / (1.0 + serial * (t - 1.0) + contention * (t - 1.0) / g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_state_folds() {
        let s = aggregate(&[3, -1, 7, 7]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 16);
        assert_eq!(s.min, -1);
        assert_eq!(s.max, 7);
        assert_eq!(s.value(AggKind::Avg), Some(4.0));
        assert_eq!(s.value(AggKind::Count), Some(4.0));
    }

    #[test]
    fn empty_state_values() {
        let s = AggState::empty();
        assert_eq!(s.value(AggKind::Count), Some(0.0));
        assert_eq!(s.value(AggKind::Sum), Some(0.0));
        assert_eq!(s.value(AggKind::Min), None);
        assert_eq!(s.value(AggKind::Max), None);
        assert_eq!(s.value(AggKind::Avg), None);
    }

    #[test]
    fn update_repeated_equals_looped() {
        let mut looped = AggState::empty();
        for _ in 0..1000 {
            looped.update(-7);
        }
        looped.update(3);
        let mut batched = AggState::empty();
        batched.update_repeated(-7, 1000);
        batched.update_repeated(3, 1);
        batched.update_repeated(99, 0); // no-op
        assert_eq!(batched, looped);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<i64> = (0..100).map(|i| i * 31 % 17 - 8).collect();
        let whole = aggregate(&data);
        let mut a = aggregate(&data[..40]);
        let b = aggregate(&data[40..]);
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn group_aggregate_basic() {
        let keys = vec![2, 1, 2, 1, 2];
        let vals = vec![10, 20, 30, 40, 50];
        let out = group_aggregate(&keys, &vals);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1.sum, 60);
        assert_eq!(out[1].0, 2);
        assert_eq!(out[1].1.sum, 90);
    }

    #[test]
    fn group_aggregate_metered_counts() {
        let keys = vec![1, 1, 2];
        let vals = vec![5, 5, 5];
        let (out, stats) = group_aggregate_metered(&keys, &vals, &KernelCosts::default_2013());
        assert_eq!(out.len(), 2);
        assert_eq!(stats.items_in, 3);
        assert_eq!(stats.items_out, 2);
        assert!(stats.profile.cpu_cycles.count() > 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn group_aggregate_ragged_panics() {
        group_aggregate(&[1], &[1, 2]);
    }

    fn workload(n: usize, groups: usize) -> (Vec<u32>, Vec<i64>, Vec<i64>) {
        let keys: Vec<u32> = (0..n).map(|i| ((i * 2_654_435_761) % groups) as u32).collect();
        let values: Vec<i64> = (0..n).map(|i| (i % 1000) as i64 - 500).collect();
        let mut expected = vec![0i64; groups];
        for (k, v) in keys.iter().zip(&values) {
            expected[*k as usize] += v;
        }
        (keys, values, expected)
    }

    #[test]
    fn all_strategies_agree_single_thread() {
        let (keys, values, expected) = workload(50_000, 16);
        for s in SyncStrategy::ALL {
            let r = parallel_group_sum(&keys, &values, 16, 1, s);
            assert_eq!(r.sums, expected, "{s}");
        }
    }

    #[test]
    fn all_strategies_agree_multi_thread() {
        let (keys, values, expected) = workload(80_000, 8);
        for s in SyncStrategy::ALL {
            for t in [2, 4] {
                let r = parallel_group_sum(&keys, &values, 8, t, s);
                assert_eq!(r.sums, expected, "{s} x{t}");
            }
        }
    }

    #[test]
    fn optimistic_reports_retries_under_contention() {
        // One group, several threads: heavy CAS contention.
        let n = 200_000;
        let keys = vec![0u32; n];
        let values = vec![1i64; n];
        let r = parallel_group_sum(&keys, &values, 1, 4, SyncStrategy::Optimistic);
        assert_eq!(r.sums[0], n as i64);
        // Retries are timing-dependent; on any multi-core machine some
        // occur, but do not require it (CI may be single-core).
        assert!(r.retries < (n * 4) as u64);
    }

    #[test]
    fn partitioned_never_retries() {
        let (keys, values, _) = workload(10_000, 4);
        let r = parallel_group_sum(&keys, &values, 4, 4, SyncStrategy::Partitioned);
        assert_eq!(r.retries, 0);
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn out_of_range_key_panics() {
        parallel_group_sum(&[5], &[1], 4, 1, SyncStrategy::Atomic);
    }

    #[test]
    fn predicted_speedup_shapes() {
        // Partitioned scales best at high thread counts with few groups.
        let t = 128;
        let g = 4;
        let part = predicted_speedup(SyncStrategy::Partitioned, t, g);
        let mutex = predicted_speedup(SyncStrategy::Mutex, t, g);
        let atomic = predicted_speedup(SyncStrategy::Atomic, t, g);
        let optimistic = predicted_speedup(SyncStrategy::Optimistic, t, g);
        assert!(
            part > atomic && atomic > optimistic && optimistic > mutex,
            "part={part:.1} atomic={atomic:.1} opt={optimistic:.1} mutex={mutex:.1}"
        );
        // With many groups, contention vanishes and all strategies are
        // within 2x of each other.
        let g = 100_000;
        let lo = SyncStrategy::ALL.iter().map(|&s| predicted_speedup(s, t, g)).fold(f64::INFINITY, f64::min);
        let hi = SyncStrategy::ALL.iter().map(|&s| predicted_speedup(s, t, g)).fold(0.0, f64::max);
        assert!(hi / lo < 2.0, "lo={lo} hi={hi}");
        // Monotone in t for partitioned.
        assert!(
            predicted_speedup(SyncStrategy::Partitioned, 64, 16)
                > predicted_speedup(SyncStrategy::Partitioned, 8, 16)
        );
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", AggKind::Sum), "sum");
        assert_eq!(format!("{}", SyncStrategy::Optimistic), "optimistic");
    }
}
