//! Morsel-driven parallelism: a work-stealing-style range dispatcher
//! over real OS threads.
//!
//! Queries are broken into small row ranges ("morsels"); idle workers
//! grab the next morsel from a shared atomic cursor, which load-balances
//! skewed per-row costs automatically — the end-to-end parallelism the
//! paper demands "from the query language level down to the execution
//! runtime". Execution happens on the persistent shared
//! [`crate::pool::WorkerPool`]; [`parallel_morsels`] is the
//! fire-and-forget compatibility front over it (no per-call thread
//! creation).

use crate::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel size in rows (≈ several L1 caches of i64).
pub const DEFAULT_MORSEL_ROWS: usize = 16 * 1024;

/// A contiguous row range `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Morsel {
    /// First row.
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for an empty range.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Hands out morsels of a `total`-row domain to competing workers.
#[derive(Debug)]
pub struct MorselDispenser {
    cursor: AtomicUsize,
    total: usize,
    morsel_rows: usize,
}

impl MorselDispenser {
    /// Creates a dispenser over `total` rows with the default morsel size.
    pub fn new(total: usize) -> Self {
        MorselDispenser::with_morsel_rows(total, DEFAULT_MORSEL_ROWS)
    }

    /// Creates a dispenser with an explicit morsel size.
    ///
    /// # Panics
    ///
    /// Panics if `morsel_rows` is zero.
    pub fn with_morsel_rows(total: usize, morsel_rows: usize) -> Self {
        assert!(morsel_rows > 0, "morsel size must be positive");
        MorselDispenser { cursor: AtomicUsize::new(0), total, morsel_rows }
    }

    /// Takes the next morsel, or `None` when the domain is exhausted.
    pub fn next_morsel(&self) -> Option<Morsel> {
        let start = self.cursor.fetch_add(self.morsel_rows, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(Morsel { start, end: (start + self.morsel_rows).min(self.total) })
    }
}

/// Runs `work` over all morsels of a `total`-row domain with up to
/// `threads` units of parallelism (the calling thread plus workers from
/// the process-wide [`crate::pool::WorkerPool`] — no threads are
/// created per call); per-unit results are combined with `merge` in
/// unspecified order (so `merge` must be commutative + associative,
/// with `zero` as identity).
///
/// # Panics
///
/// Panics if `threads` is zero or a worker panics.
pub fn parallel_morsels<T, W, M>(
    total: usize,
    threads: usize,
    morsel_rows: usize,
    work: W,
    merge: M,
    zero: T,
) -> T
where
    T: Send,
    W: Fn(Morsel) -> T + Sync,
    M: Fn(T, T) -> T + Send + Sync,
    T: Clone,
{
    assert!(threads > 0, "need at least one thread");
    crate::pool::WorkerPool::global().run(
        total,
        crate::pool::RunSpec::new(threads, morsel_rows),
        work,
        merge,
        zero,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dispenser_covers_domain_exactly() {
        let d = MorselDispenser::with_morsel_rows(10_000, 999);
        let mut seen = HashSet::new();
        let mut count = 0;
        while let Some(m) = d.next_morsel() {
            assert!(!m.is_empty());
            for i in m.start..m.end {
                assert!(seen.insert(i), "row {i} dispensed twice");
            }
            count += m.len();
        }
        assert_eq!(count, 10_000);
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn dispenser_empty_domain() {
        let d = MorselDispenser::new(0);
        assert_eq!(d.next_morsel(), None);
    }

    #[test]
    fn last_morsel_truncated() {
        let d = MorselDispenser::with_morsel_rows(10, 8);
        assert_eq!(d.next_morsel(), Some(Morsel { start: 0, end: 8 }));
        assert_eq!(d.next_morsel(), Some(Morsel { start: 8, end: 10 }));
        assert_eq!(d.next_morsel(), None);
    }

    #[test]
    fn parallel_sum_correct() {
        let data: Vec<i64> = (0..1_000_000).collect();
        let expected: i64 = data.iter().sum();
        for threads in [1, 2, 4] {
            let sum = parallel_morsels(
                data.len(),
                threads,
                4096,
                |m| data[m.start..m.end].iter().sum::<i64>(),
                |a, b| a + b,
                0i64,
            );
            assert_eq!(sum, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_with_vec_merge() {
        // Collect all morsel starts; merge is concatenation (commutative
        // only up to reordering, so compare as sets).
        let starts = parallel_morsels(
            100,
            3,
            7,
            |m| vec![m.start],
            |mut a, b| {
                a.extend(b);
                a
            },
            Vec::new(),
        );
        let set: HashSet<usize> = starts.into_iter().collect();
        let expected: HashSet<usize> = (0..100).step_by(7).collect();
        assert_eq!(set, expected);
    }

    #[test]
    #[should_panic(expected = "morsel size must be positive")]
    fn zero_morsel_panics() {
        let _ = MorselDispenser::with_morsel_rows(10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        parallel_morsels(10, 0, 1, |_| 0u32, |a, b| a + b, 0);
    }
}
