//! Equi-joins: hash join (build + probe) and sort-merge join.
//!
//! Both return matching index pairs `(build_row, probe_row)` /
//! `(left_row, right_row)` so callers can gather any payload columns —
//! the late-materialization style of column stores.

use crate::metrics::OpStats;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::units::ByteCount;
use haec_energy::ResourceProfile;
use std::collections::HashMap;
use std::time::Instant;

/// A hash table over the build side of an equi-join.
///
/// ```
/// use haec_exec::join::HashJoin;
/// let build = vec![10i64, 20, 30];
/// let probe = vec![20i64, 20, 99];
/// let join = HashJoin::build(&build);
/// let pairs = join.probe(&probe);
/// assert_eq!(pairs, vec![(1, 0), (1, 1)]); // build row 1 matches probe rows 0 and 1
/// ```
#[derive(Clone, Debug)]
pub struct HashJoin {
    table: HashMap<i64, Vec<u32>>,
    build_rows: usize,
}

impl HashJoin {
    /// Builds the hash table over `keys`.
    ///
    /// # Panics
    ///
    /// Panics if the build side exceeds `u32` rows.
    pub fn build(keys: &[i64]) -> Self {
        assert!(keys.len() <= u32::MAX as usize, "build side too large");
        let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            table.entry(k).or_default().push(i as u32);
        }
        HashJoin { table, build_rows: keys.len() }
    }

    /// Builds from `(key, row id)` pairs — the streaming entry point for
    /// callers that extract keys from compressed segments (dictionary
    /// codes, encoded ints) without materializing a flat key column. Row
    /// ids are the caller's own (e.g. global table rows), not positions
    /// in a slice.
    pub fn from_pairs(pairs: &[(i64, u32)]) -> Self {
        let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(pairs.len());
        for &(k, row) in pairs {
            table.entry(k).or_default().push(row);
        }
        HashJoin { table, build_rows: pairs.len() }
    }

    /// The build rows matching `key` (`None` on a miss) — the streaming
    /// probe primitive for callers that probe key-by-key as they decode.
    pub fn matches(&self, key: i64) -> Option<&[u32]> {
        self.table.get(&key).map(Vec::as_slice)
    }

    /// Number of rows on the build side.
    pub fn build_rows(&self) -> usize {
        self.build_rows
    }

    /// Number of distinct build keys.
    pub fn distinct_keys(&self) -> usize {
        self.table.len()
    }

    /// Probes with `keys`, returning `(build_row, probe_row)` pairs in
    /// probe order.
    pub fn probe(&self, keys: &[i64]) -> Vec<(u32, u32)> {
        // Reserve for the common ~1 match/probe (FK join) shape so the
        // output vector doesn't double-write its way up; the metered
        // wrapper bills the writes on this assumption.
        let mut out = Vec::with_capacity(keys.len());
        for (j, k) in keys.iter().enumerate() {
            if let Some(rows) = self.table.get(k) {
                for &i in rows {
                    out.push((i, j as u32));
                }
            }
        }
        out
    }

    /// Probes and reports semi-join (exists) matches only.
    pub fn probe_semi(&self, keys: &[i64]) -> Vec<u32> {
        keys.iter().enumerate().filter(|(_, k)| self.table.contains_key(k)).map(|(j, _)| j as u32).collect()
    }
}

/// Runs a full metered hash join (build + probe).
pub fn hash_join_metered(
    build_keys: &[i64],
    probe_keys: &[i64],
    costs: &KernelCosts,
) -> (Vec<(u32, u32)>, OpStats) {
    let start = Instant::now();
    let join = HashJoin::build(build_keys);
    let pairs = join.probe(probe_keys);
    let wall = start.elapsed();
    let b = build_keys.len() as u64;
    let p = probe_keys.len() as u64;
    let hits = pairs.len() as u64;
    let profile = ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::HashBuild, b) + costs.cycles_for(Kernel::HashProbe, p),
        // Probing is not free of table traffic: each probe reads the
        // keys themselves plus one hash-bucket header, and every hit
        // walks the bucket's row-id list.
        dram_read: ByteCount::new((b + p) * 8 + p * HASH_BUCKET_BYTES + hits * 4),
        // Build-table entries plus the output pairs vector (reserved
        // upfront in `probe`, so growth doesn't double-write).
        dram_written: ByteCount::new(b * 16 + hits * 8),
        ..ResourceProfile::default()
    };
    let stats = OpStats { items_in: b + p, items_out: hits, profile, wall };
    (pairs, stats)
}

/// Bytes a hash probe touches per bucket access (header + key slot) —
/// shared by the metered kernels here and by executors that bill
/// streaming probes themselves.
pub const HASH_BUCKET_BYTES: u64 = 16;

/// Sort-merge equi-join: sorts index permutations of both inputs and
/// merges, returning `(left_row, right_row)` pairs (sorted by key, then
/// input order). Handles duplicate keys on both sides (cross product per
/// key group).
pub fn sort_merge_join(left: &[i64], right: &[i64]) -> Vec<(u32, u32)> {
    assert!(left.len() <= u32::MAX as usize && right.len() <= u32::MAX as usize, "input too large");
    let mut li: Vec<u32> = (0..left.len() as u32).collect();
    let mut ri: Vec<u32> = (0..right.len() as u32).collect();
    li.sort_by_key(|&i| left[i as usize]);
    ri.sort_by_key(|&j| right[j as usize]);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < li.len() && j < ri.len() {
        let lk = left[li[i] as usize];
        let rk = right[ri[j] as usize];
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Extent of equal keys on both sides.
                let i_end = li[i..].iter().take_while(|&&x| left[x as usize] == lk).count() + i;
                let j_end = ri[j..].iter().take_while(|&&x| right[x as usize] == rk).count() + j;
                for &l in &li[i..i_end] {
                    for &r in &ri[j..j_end] {
                        out.push((l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Sort-merge equi-join over `(key, row id)` pairs — the streaming
/// entry point matching [`HashJoin::from_pairs`]: callers extract keys
/// from compressed segments and join without flat key columns. Both
/// inputs are sorted in place by `(key, row)`; returns
/// `(left_row, right_row)` pairs ordered by key, then row ids (cross
/// product per duplicate-key group).
pub fn sort_merge_join_pairs(left: &mut [(i64, u32)], right: &mut [(i64, u32)]) -> Vec<(u32, u32)> {
    sort_merge_join_pairs_presorted(left, right, false, false)
}

/// [`sort_merge_join_pairs`] for callers that *know* a side is already
/// in key order — a table whose declared sort key is the join key
/// streams its keys pre-sorted out of the main store, and the sort pass
/// for that side is pure waste. A side flagged sorted is left untouched
/// (debug builds verify the claim); unflagged sides are sorted in place
/// as before. Output is identical to the unflagged entry point except
/// for intra-group row order on a flagged side, which follows that
/// side's storage order (ascending row ids — the same order
/// `sort_unstable` by `(key, row)` would produce for distinct rows).
pub fn sort_merge_join_pairs_presorted(
    left: &mut [(i64, u32)],
    right: &mut [(i64, u32)],
    left_sorted: bool,
    right_sorted: bool,
) -> Vec<(u32, u32)> {
    if left_sorted {
        debug_assert!(left.windows(2).all(|w| w[0].0 <= w[1].0), "left side claimed sorted");
    } else {
        left.sort_unstable();
    }
    if right_sorted {
        debug_assert!(right.windows(2).all(|w| w[0].0 <= w[1].0), "right side claimed sorted");
    } else {
        right.sort_unstable();
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let lk = left[i].0;
        let rk = right[j].0;
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = i + left[i..].iter().take_while(|&&(k, _)| k == lk).count();
                let j_end = j + right[j..].iter().take_while(|&&(k, _)| k == rk).count();
                for &(_, l) in &left[i..i_end] {
                    for &(_, r) in &right[j..j_end] {
                        out.push((l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Metered variant of [`sort_merge_join`].
pub fn sort_merge_join_metered(
    left: &[i64],
    right: &[i64],
    costs: &KernelCosts,
) -> (Vec<(u32, u32)>, OpStats) {
    let start = Instant::now();
    let pairs = sort_merge_join(left, right);
    let wall = start.elapsed();
    let n = (left.len() + right.len()) as u64;
    let hits = pairs.len() as u64;
    let levels = (n.max(2) as f64).log2().ceil() as u64;
    let profile = ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::SortPerLevel, n * levels),
        // Sort passes re-read both key arrays per level, and the final
        // merge pass streams both sorted runs once more (the old bill
        // stopped at the sort, as if merging were free).
        dram_read: ByteCount::new(n * 8 * levels + n * 8),
        // The sorted index permutations, plus the output pairs vector.
        dram_written: ByteCount::new(n * 8 + hits * 8),
        ..ResourceProfile::default()
    };
    let stats = OpStats { items_in: n, items_out: hits, profile, wall };
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        pairs.sort_unstable();
        pairs
    }

    fn nested_loop(left: &[i64], right: &[i64]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                if l == r {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let left: Vec<i64> = (0..200).map(|i| i % 23).collect();
        let right: Vec<i64> = (0..150).map(|i| i % 31).collect();
        let want = canonical(nested_loop(&left, &right));
        let got = canonical(HashJoin::build(&left).probe(&right));
        assert_eq!(got, want);
    }

    #[test]
    fn sort_merge_matches_nested_loop() {
        let left: Vec<i64> = (0..200).map(|i| (i * 7) % 23).collect();
        let right: Vec<i64> = (0..150).map(|i| (i * 3) % 31).collect();
        let want = canonical(nested_loop(&left, &right));
        let got = canonical(sort_merge_join(&left, &right));
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let left = vec![5, 5];
        let right = vec![5, 5, 5];
        assert_eq!(HashJoin::build(&left).probe(&right).len(), 6);
        assert_eq!(sort_merge_join(&left, &right).len(), 6);
    }

    #[test]
    fn empty_sides() {
        assert!(HashJoin::build(&[]).probe(&[1, 2]).is_empty());
        assert!(HashJoin::build(&[1]).probe(&[]).is_empty());
        assert!(sort_merge_join(&[], &[1]).is_empty());
        assert!(sort_merge_join(&[1], &[]).is_empty());
    }

    #[test]
    fn semi_join() {
        let join = HashJoin::build(&[1, 2, 3]);
        assert_eq!(join.probe_semi(&[0, 2, 2, 9, 3]), vec![1, 2, 4]);
    }

    #[test]
    fn build_metadata() {
        let join = HashJoin::build(&[7, 7, 8]);
        assert_eq!(join.build_rows(), 3);
        assert_eq!(join.distinct_keys(), 2);
    }

    #[test]
    fn metered_stats() {
        let build: Vec<i64> = (0..1000).collect();
        let probe: Vec<i64> = (500..1500).collect();
        let (pairs, stats) = hash_join_metered(&build, &probe, &KernelCosts::default_2013());
        assert_eq!(pairs.len(), 500);
        assert_eq!(stats.items_in, 2000);
        assert_eq!(stats.items_out, 500);
        assert!(stats.profile.cpu_cycles.count() > 0);

        let (pairs2, stats2) = sort_merge_join_metered(&build, &probe, &KernelCosts::default_2013());
        assert_eq!(canonical(pairs2), canonical(pairs));
        assert!(stats2.profile.cpu_cycles.count() > 0);
    }

    #[test]
    fn pair_entry_points_match_slice_kernels() {
        let left: Vec<i64> = (0..120).map(|i| (i * 5) % 17).collect();
        let right: Vec<i64> = (0..90).map(|i| (i * 11) % 13).collect();
        let want = canonical(nested_loop(&left, &right));
        // from_pairs + matches reproduces build+probe.
        let lp: Vec<(i64, u32)> = left.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let join = HashJoin::from_pairs(&lp);
        assert_eq!(join.build_rows(), left.len());
        let mut got = Vec::new();
        for (j, k) in right.iter().enumerate() {
            if let Some(rows) = join.matches(*k) {
                got.extend(rows.iter().map(|&i| (i, j as u32)));
            }
        }
        assert_eq!(canonical(got), want);
        assert!(join.matches(i64::MAX).is_none());
        // sort_merge_join_pairs agrees too, with shifted row ids.
        let mut lp: Vec<(i64, u32)> = left.iter().enumerate().map(|(i, &k)| (k, i as u32 + 7)).collect();
        let mut rp: Vec<(i64, u32)> = right.iter().enumerate().map(|(j, &k)| (k, j as u32 + 3)).collect();
        let got = sort_merge_join_pairs(&mut lp, &mut rp);
        let shifted: Vec<(u32, u32)> = want.iter().map(|&(l, r)| (l + 7, r + 3)).collect();
        assert_eq!(canonical(got), canonical(shifted));
        assert!(sort_merge_join_pairs(&mut [], &mut [(1, 0)]).is_empty());
    }

    #[test]
    fn metered_probe_bills_bucket_traffic() {
        // Every probe hits: the probe side must be billed more than the
        // bare keys (bucket headers + hit row-id reads), and the output
        // pairs must be billed as writes.
        let costs = KernelCosts::default_2013();
        let build: Vec<i64> = (0..1000).collect();
        let (hit_pairs, hit) = hash_join_metered(&build, &build, &costs);
        let miss_probe: Vec<i64> = (10_000..11_000).collect();
        let (miss_pairs, miss) = hash_join_metered(&build, &miss_probe, &costs);
        assert_eq!(hit_pairs.len(), 1000);
        assert!(miss_pairs.is_empty());
        // Same build and probe cardinality, but hits read bucket lists
        // and write pairs the all-miss probe never touches.
        assert!(hit.profile.dram_read.bytes() > miss.profile.dram_read.bytes());
        assert!(hit.profile.dram_written.bytes() > miss.profile.dram_written.bytes());
        // And even the all-miss probe pays bucket headers beyond p*8.
        let n = (build.len() + miss_probe.len()) as u64;
        assert!(miss.profile.dram_read.bytes() > n * 8);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let left = vec![i64::MIN, -1, 0, i64::MAX];
        let right = vec![i64::MAX, i64::MIN];
        let want = canonical(nested_loop(&left, &right));
        assert_eq!(canonical(HashJoin::build(&left).probe(&right)), want);
        assert_eq!(canonical(sort_merge_join(&left, &right)), want);
    }
}
