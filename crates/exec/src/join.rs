//! Equi-joins: hash join (build + probe) and sort-merge join.
//!
//! Both return matching index pairs `(build_row, probe_row)` /
//! `(left_row, right_row)` so callers can gather any payload columns —
//! the late-materialization style of column stores.

use crate::metrics::OpStats;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::units::ByteCount;
use haec_energy::ResourceProfile;
use std::collections::HashMap;
use std::time::Instant;

/// A hash table over the build side of an equi-join.
///
/// ```
/// use haec_exec::join::HashJoin;
/// let build = vec![10i64, 20, 30];
/// let probe = vec![20i64, 20, 99];
/// let join = HashJoin::build(&build);
/// let pairs = join.probe(&probe);
/// assert_eq!(pairs, vec![(1, 0), (1, 1)]); // build row 1 matches probe rows 0 and 1
/// ```
#[derive(Clone, Debug)]
pub struct HashJoin {
    table: HashMap<i64, Vec<u32>>,
    build_rows: usize,
}

impl HashJoin {
    /// Builds the hash table over `keys`.
    ///
    /// # Panics
    ///
    /// Panics if the build side exceeds `u32` rows.
    pub fn build(keys: &[i64]) -> Self {
        assert!(keys.len() <= u32::MAX as usize, "build side too large");
        let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            table.entry(k).or_default().push(i as u32);
        }
        HashJoin { table, build_rows: keys.len() }
    }

    /// Number of rows on the build side.
    pub fn build_rows(&self) -> usize {
        self.build_rows
    }

    /// Number of distinct build keys.
    pub fn distinct_keys(&self) -> usize {
        self.table.len()
    }

    /// Probes with `keys`, returning `(build_row, probe_row)` pairs in
    /// probe order.
    pub fn probe(&self, keys: &[i64]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (j, k) in keys.iter().enumerate() {
            if let Some(rows) = self.table.get(k) {
                for &i in rows {
                    out.push((i, j as u32));
                }
            }
        }
        out
    }

    /// Probes and reports semi-join (exists) matches only.
    pub fn probe_semi(&self, keys: &[i64]) -> Vec<u32> {
        keys.iter().enumerate().filter(|(_, k)| self.table.contains_key(k)).map(|(j, _)| j as u32).collect()
    }
}

/// Runs a full metered hash join (build + probe).
pub fn hash_join_metered(
    build_keys: &[i64],
    probe_keys: &[i64],
    costs: &KernelCosts,
) -> (Vec<(u32, u32)>, OpStats) {
    let start = Instant::now();
    let join = HashJoin::build(build_keys);
    let pairs = join.probe(probe_keys);
    let wall = start.elapsed();
    let b = build_keys.len() as u64;
    let p = probe_keys.len() as u64;
    let profile = ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::HashBuild, b) + costs.cycles_for(Kernel::HashProbe, p),
        dram_read: ByteCount::new((b + p) * 8),
        dram_written: ByteCount::new(b * 16 + pairs.len() as u64 * 8),
        ..ResourceProfile::default()
    };
    let stats = OpStats { items_in: b + p, items_out: pairs.len() as u64, profile, wall };
    (pairs, stats)
}

/// Sort-merge equi-join: sorts index permutations of both inputs and
/// merges, returning `(left_row, right_row)` pairs (sorted by key, then
/// input order). Handles duplicate keys on both sides (cross product per
/// key group).
pub fn sort_merge_join(left: &[i64], right: &[i64]) -> Vec<(u32, u32)> {
    assert!(left.len() <= u32::MAX as usize && right.len() <= u32::MAX as usize, "input too large");
    let mut li: Vec<u32> = (0..left.len() as u32).collect();
    let mut ri: Vec<u32> = (0..right.len() as u32).collect();
    li.sort_by_key(|&i| left[i as usize]);
    ri.sort_by_key(|&j| right[j as usize]);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < li.len() && j < ri.len() {
        let lk = left[li[i] as usize];
        let rk = right[ri[j] as usize];
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Extent of equal keys on both sides.
                let i_end = li[i..].iter().take_while(|&&x| left[x as usize] == lk).count() + i;
                let j_end = ri[j..].iter().take_while(|&&x| right[x as usize] == rk).count() + j;
                for &l in &li[i..i_end] {
                    for &r in &ri[j..j_end] {
                        out.push((l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Metered variant of [`sort_merge_join`].
pub fn sort_merge_join_metered(
    left: &[i64],
    right: &[i64],
    costs: &KernelCosts,
) -> (Vec<(u32, u32)>, OpStats) {
    let start = Instant::now();
    let pairs = sort_merge_join(left, right);
    let wall = start.elapsed();
    let n = (left.len() + right.len()) as u64;
    let levels = (n.max(2) as f64).log2().ceil() as u64;
    let profile = ResourceProfile {
        cpu_cycles: costs.cycles_for(Kernel::SortPerLevel, n * levels),
        dram_read: ByteCount::new(n * 8 * levels),
        dram_written: ByteCount::new(pairs.len() as u64 * 8),
        ..ResourceProfile::default()
    };
    let stats = OpStats { items_in: n, items_out: pairs.len() as u64, profile, wall };
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        pairs.sort_unstable();
        pairs
    }

    fn nested_loop(left: &[i64], right: &[i64]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                if l == r {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let left: Vec<i64> = (0..200).map(|i| i % 23).collect();
        let right: Vec<i64> = (0..150).map(|i| i % 31).collect();
        let want = canonical(nested_loop(&left, &right));
        let got = canonical(HashJoin::build(&left).probe(&right));
        assert_eq!(got, want);
    }

    #[test]
    fn sort_merge_matches_nested_loop() {
        let left: Vec<i64> = (0..200).map(|i| (i * 7) % 23).collect();
        let right: Vec<i64> = (0..150).map(|i| (i * 3) % 31).collect();
        let want = canonical(nested_loop(&left, &right));
        let got = canonical(sort_merge_join(&left, &right));
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let left = vec![5, 5];
        let right = vec![5, 5, 5];
        assert_eq!(HashJoin::build(&left).probe(&right).len(), 6);
        assert_eq!(sort_merge_join(&left, &right).len(), 6);
    }

    #[test]
    fn empty_sides() {
        assert!(HashJoin::build(&[]).probe(&[1, 2]).is_empty());
        assert!(HashJoin::build(&[1]).probe(&[]).is_empty());
        assert!(sort_merge_join(&[], &[1]).is_empty());
        assert!(sort_merge_join(&[1], &[]).is_empty());
    }

    #[test]
    fn semi_join() {
        let join = HashJoin::build(&[1, 2, 3]);
        assert_eq!(join.probe_semi(&[0, 2, 2, 9, 3]), vec![1, 2, 4]);
    }

    #[test]
    fn build_metadata() {
        let join = HashJoin::build(&[7, 7, 8]);
        assert_eq!(join.build_rows(), 3);
        assert_eq!(join.distinct_keys(), 2);
    }

    #[test]
    fn metered_stats() {
        let build: Vec<i64> = (0..1000).collect();
        let probe: Vec<i64> = (500..1500).collect();
        let (pairs, stats) = hash_join_metered(&build, &probe, &KernelCosts::default_2013());
        assert_eq!(pairs.len(), 500);
        assert_eq!(stats.items_in, 2000);
        assert_eq!(stats.items_out, 500);
        assert!(stats.profile.cpu_cycles.count() > 0);

        let (pairs2, stats2) = sort_merge_join_metered(&build, &probe, &KernelCosts::default_2013());
        assert_eq!(canonical(pairs2), canonical(pairs));
        assert!(stats2.profile.cpu_cycles.count() > 0);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let left = vec![i64::MIN, -1, 0, i64::MAX];
        let right = vec![i64::MAX, i64::MIN];
        let want = canonical(nested_loop(&left, &right));
        assert_eq!(canonical(HashJoin::build(&left).probe(&right)), want);
        assert_eq!(canonical(sort_merge_join(&left, &right)), want);
    }
}
