//! Property-based tests: optimality and consistency invariants of the
//! planners and the constrained chooser.

use haec_energy::machine::MachineSpec;
use haec_energy::units::Joules;
use haec_planner::cost::{CostModel, PlanCost};
use haec_planner::join_order::{plan_dp, plan_greedy, plan_left_deep, JoinGraph};
use haec_planner::optimizer::{choose, pareto_frontier, Goal};
use proptest::prelude::*;
use std::time::Duration;

/// Random connected join graphs small enough for DP.
fn graphs() -> impl Strategy<Value = JoinGraph> {
    (2usize..9)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(1.0f64..1e6, n..=n),
                proptest::collection::vec((0.0001f64..1.0, any::<u32>()), n - 1..=n - 1),
                proptest::collection::vec((0usize..n, 0usize..n, 0.001f64..1.0), 0..3),
            )
        })
        .prop_map(|(rows, spine, extra)| {
            let n = rows.len();
            let mut g = JoinGraph::new(rows);
            // Random spanning tree: node i attaches to a random earlier node.
            for (i, (sel, salt)) in spine.into_iter().enumerate() {
                let target = (salt as usize) % (i + 1);
                g.add_edge(i + 1, target, sel);
            }
            for (a, b, sel) in extra {
                if a != b && n > 1 {
                    g.add_edge(a % n, b % n, sel.clamp(0.001, 1.0));
                }
            }
            g
        })
}

fn plan_costs() -> impl Strategy<Value = Vec<PlanCost>> {
    proptest::collection::vec((1u64..1_000_000, 0.001f64..1e4), 1..20).prop_map(|v| {
        v.into_iter()
            .map(|(us, j)| PlanCost { time: Duration::from_micros(us), energy: Joules::new(j) })
            .collect()
    })
}

proptest! {
    /// DP is exact: never worse than either heuristic, and all planners
    /// agree on the final cardinality (it is plan-invariant).
    #[test]
    fn dp_dominates_heuristics(g in graphs()) {
        let dp = plan_dp(&g);
        let gr = plan_greedy(&g);
        let ld = plan_left_deep(&g);
        prop_assert!(dp.cout <= gr.cout * (1.0 + 1e-9), "dp {} > greedy {}", dp.cout, gr.cout);
        prop_assert!(dp.cout <= ld.cout * (1.0 + 1e-9), "dp {} > left-deep {}", dp.cout, ld.cout);
        for other in [gr.final_card, ld.final_card] {
            let rel = (dp.final_card - other).abs() / dp.final_card.max(1e-12);
            prop_assert!(rel < 1e-6, "final card diverged: {} vs {}", dp.final_card, other);
        }
    }

    /// Pareto frontier correctness: members are mutually undominated and
    /// every non-member is dominated by some member.
    #[test]
    fn pareto_frontier_is_sound_and_complete(costs in plan_costs()) {
        let frontier = pareto_frontier(&costs);
        prop_assert!(!frontier.is_empty());
        let dominates = |a: &PlanCost, b: &PlanCost| {
            (a.time <= b.time && a.energy.joules() <= b.energy.joules())
                && (a.time < b.time || a.energy.joules() < b.energy.joules())
        };
        for (i, &fa) in frontier.iter().enumerate() {
            for &fb in frontier.iter().skip(i + 1) {
                prop_assert!(!dominates(&costs[fa], &costs[fb]), "frontier member dominated");
                prop_assert!(!dominates(&costs[fb], &costs[fa]), "frontier member dominated");
            }
        }
        for i in 0..costs.len() {
            if !frontier.contains(&i) {
                let dominated = frontier.iter().any(|&f| {
                    costs[f].time <= costs[i].time && costs[f].energy.joules() <= costs[i].energy.joules()
                });
                prop_assert!(dominated, "non-member {} escapes the frontier", i);
            }
        }
    }

    /// The constrained chooser really respects its constraint, and the
    /// unconstrained goals pick global minima.
    #[test]
    fn chooser_respects_constraints(costs in plan_costs(), budget_j in 0.001f64..1e4, deadline_us in 1u64..1_000_000) {
        let budget = Joules::new(budget_j);
        let deadline = Duration::from_micros(deadline_us);
        match choose(&costs, Goal::MinTimeUnderEnergyBudget(budget)) {
            Ok(i) => {
                prop_assert!(costs[i].energy.joules() <= budget.joules());
                for c in &costs {
                    if c.energy.joules() <= budget.joules() {
                        prop_assert!(costs[i].time <= c.time);
                    }
                }
            }
            Err(_) => {
                prop_assert!(costs.iter().all(|c| c.energy.joules() > budget.joules()));
            }
        }
        match choose(&costs, Goal::MinEnergyUnderDeadline(deadline)) {
            Ok(i) => {
                prop_assert!(costs[i].time <= deadline);
                for c in &costs {
                    if c.time <= deadline {
                        prop_assert!(costs[i].energy.joules() <= c.energy.joules());
                    }
                }
            }
            Err(_) => {
                prop_assert!(costs.iter().all(|c| c.time > deadline));
            }
        }
        let fastest = choose(&costs, Goal::MinTime).unwrap();
        prop_assert!(costs.iter().all(|c| costs[fastest].time <= c.time));
        let cheapest = choose(&costs, Goal::MinEnergy).unwrap();
        prop_assert!(costs.iter().all(|c| costs[cheapest].energy.joules() <= c.energy.joules()));
    }

    /// Cost-model monotonicity: scans grow with rows and selectivity;
    /// joins grow with either input.
    #[test]
    fn cost_model_monotone(rows in 1_000u64..10_000_000, sel in 0.0f64..1.0) {
        let m = CostModel::new(MachineSpec::commodity_2013());
        let base = m.scan(rows, 8, sel);
        let more_rows = m.scan(rows * 2, 8, sel);
        prop_assert!(more_rows.time >= base.time);
        prop_assert!(more_rows.energy.joules() >= base.energy.joules());
        let higher_sel = m.scan(rows, 8, (sel + 0.3).min(1.0));
        prop_assert!(higher_sel.time >= base.time);
        let j1 = m.hash_join(rows / 2, rows, rows / 4);
        let j2 = m.hash_join(rows / 2, rows * 3, rows / 4);
        prop_assert!(j2.time >= j1.time);
    }
}
