//! Access-path selection: index lookup vs full scan (experiment E1).
//!
//! The paper's §IV example: "if a query can be answered using an index
//! lookup instead of a table scan, fewer cycles are spent on that
//! particular query" — i.e. classic cost-based access-path selection is
//! already energy optimization. This module makes the decision with the
//! dual-objective cost model, so the experiment can verify that the
//! time-optimal and energy-optimal choices coincide on one node.

use crate::catalog::TableMeta;
use crate::cost::{CostModel, PlanCost};
use haec_columnar::value::CmpOp;
use std::fmt;

/// The chosen access path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Scan all rows, filter on the fly.
    FullScan,
    /// Resolve via the secondary index.
    IndexLookup,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::FullScan => f.write_str("full-scan"),
            AccessPath::IndexLookup => f.write_str("index-lookup"),
        }
    }
}

/// The decision with both alternatives costed.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessDecision {
    /// The chosen path.
    pub path: AccessPath,
    /// Estimated predicate selectivity.
    pub selectivity: f64,
    /// Cost of the scan alternative.
    pub scan_cost: PlanCost,
    /// Cost of the index alternative (`None` if no index exists).
    pub index_cost: Option<PlanCost>,
}

impl AccessDecision {
    /// The cost of the chosen path.
    pub fn chosen_cost(&self) -> PlanCost {
        match self.path {
            AccessPath::FullScan => self.scan_cost,
            AccessPath::IndexLookup => self.index_cost.expect("index path implies index cost"),
        }
    }
}

/// Estimates the selectivity of `column op literal` on `table`.
pub fn estimate_selectivity(table: &TableMeta, column: &str, op: CmpOp, literal: i64) -> f64 {
    let Some(col) = table.column(column) else {
        return 0.5; // unknown column: fall back to a neutral guess
    };
    match op {
        CmpOp::Eq => col.eq_selectivity(),
        CmpOp::Ne => 1.0 - col.eq_selectivity(),
        CmpOp::Lt => col.lt_selectivity(literal),
        CmpOp::Le => col.lt_selectivity(literal + 1),
        CmpOp::Gt => 1.0 - col.lt_selectivity(literal + 1),
        CmpOp::Ge => 1.0 - col.lt_selectivity(literal),
    }
}

/// Min/max statistics of one segment (or the delta tail) of a column —
/// what the storage layer's zone maps export to the planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneMapMeta {
    /// Rows covered by this zone.
    pub rows: u64,
    /// Smallest value in the zone.
    pub min: i64,
    /// Largest value in the zone.
    pub max: i64,
}

impl ZoneMapMeta {
    /// Returns `true` if this zone's `[min, max]` intersects `[lo, hi]`
    /// — the join-pruning test: a probe segment whose key zone misses
    /// the build side's key range entirely cannot produce a match, so
    /// the executor skips it without touching a byte. `lo > hi` (an
    /// empty range) prunes everything.
    pub fn overlaps(&self, lo: i64, hi: i64) -> bool {
        lo <= hi && self.min <= hi && self.max >= lo
    }

    /// Returns `true` if a row matching `value op literal` may exist in
    /// this zone.
    pub fn may_match(&self, op: CmpOp, literal: i64) -> bool {
        match op {
            CmpOp::Eq => literal >= self.min && literal <= self.max,
            CmpOp::Ne => !(self.min == self.max && self.min == literal),
            CmpOp::Lt => self.min < literal,
            CmpOp::Le => self.min <= literal,
            CmpOp::Gt => self.max > literal,
            CmpOp::Ge => self.max >= literal,
        }
    }
}

/// Fraction of rows living in zones that survive pruning for
/// `value op literal` (1.0 when `zones` is empty — no statistics, no
/// pruning).
pub fn zone_survival(zones: &[ZoneMapMeta], op: CmpOp, literal: i64) -> f64 {
    let total: u64 = zones.iter().map(|z| z.rows).sum();
    if total == 0 {
        return 1.0;
    }
    let live: u64 = zones.iter().filter(|z| z.may_match(op, literal)).map(|z| z.rows).sum();
    live as f64 / total as f64
}

/// Fraction of rows living in zones whose key range intersects
/// `[lo, hi]` — the probe-side survival estimate for an equi-join
/// against a build side whose keys span `[lo, hi]` (1.0 when `zones` is
/// empty: no statistics, no pruning). This is the zone intersection the
/// executor's per-segment [`ZoneMapMeta::overlaps`] check realizes, so
/// the cost model and the runtime can never disagree on what survives.
pub fn join_zone_overlap(zones: &[ZoneMapMeta], lo: i64, hi: i64) -> f64 {
    let total: u64 = zones.iter().map(|z| z.rows).sum();
    if total == 0 {
        return 1.0;
    }
    let live: u64 = zones.iter().filter(|z| z.overlaps(lo, hi)).map(|z| z.rows).sum();
    live as f64 / total as f64
}

/// Chooses the access path on a **segmented, compressed** table: the
/// scan alternative is costed with [`CostModel::scan_compressed`] —
/// encoded bytes and zone-map survival rather than raw row width — so
/// scan-vs-index crossovers reflect the compressed footprint.
pub fn choose_access_segmented(
    model: &CostModel,
    table: &TableMeta,
    column: &str,
    op: CmpOp,
    literal: i64,
    zones: &[ZoneMapMeta],
    encoded_bytes: u64,
) -> AccessDecision {
    let sel = estimate_selectivity(table, column, op, literal);
    let matches = (sel * table.rows as f64).ceil() as u64;
    let live = zone_survival(zones, op, literal);
    let scan_cost = model.scan_compressed(table.rows, encoded_bytes, sel, live);
    let indexed = table.column(column).map(|c| c.indexed).unwrap_or(false)
        && matches!(op, CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    let index_cost = indexed.then(|| model.index_lookup(matches, table.row_bytes));
    let path = match &index_cost {
        Some(ic) if ic.time < scan_cost.time => AccessPath::IndexLookup,
        _ => AccessPath::FullScan,
    };
    AccessDecision { path, selectivity: sel, scan_cost, index_cost }
}

/// Chooses the access path for `column op literal` on `table`, by
/// predicted time (on a single node the energy ordering coincides; the
/// experiment verifies this).
pub fn choose_access(
    model: &CostModel,
    table: &TableMeta,
    column: &str,
    op: CmpOp,
    literal: i64,
) -> AccessDecision {
    let sel = estimate_selectivity(table, column, op, literal);
    let matches = (sel * table.rows as f64).ceil() as u64;
    let scan_cost = model.scan(table.rows, table.row_bytes, sel);
    let indexed = table.column(column).map(|c| c.indexed).unwrap_or(false)
        && matches!(op, CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    let index_cost = indexed.then(|| model.index_lookup(matches, table.row_bytes));
    let path = match &index_cost {
        Some(ic) if ic.time < scan_cost.time => AccessPath::IndexLookup,
        _ => AccessPath::FullScan,
    };
    AccessDecision { path, selectivity: sel, scan_cost, index_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnMeta;
    use haec_energy::machine::MachineSpec;

    fn table(rows: u64, indexed: bool) -> TableMeta {
        TableMeta {
            name: "orders".into(),
            rows,
            row_bytes: 8,
            columns: vec![ColumnMeta { name: "id".into(), ndv: rows, min: 0, max: rows as i64 - 1, indexed }],
        }
    }

    fn model() -> CostModel {
        CostModel::new(MachineSpec::commodity_2013())
    }

    #[test]
    fn point_query_uses_index() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Eq, 42);
        assert_eq!(d.path, AccessPath::IndexLookup);
        assert!(d.selectivity < 1e-6);
        // And the index is better on BOTH objectives (the E1 claim).
        let ic = d.index_cost.unwrap();
        assert!(ic.time < d.scan_cost.time);
        assert!(ic.energy.joules() < d.scan_cost.energy.joules());
    }

    #[test]
    fn broad_range_uses_scan() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Lt, 5_000_000);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!((d.selectivity - 0.5).abs() < 0.01);
        let ic = d.index_cost.unwrap();
        assert!(d.scan_cost.time < ic.time);
        assert!(d.scan_cost.energy.joules() < ic.energy.joules());
    }

    #[test]
    fn no_index_forces_scan() {
        let d = choose_access(&model(), &table(10_000_000, false), "id", CmpOp::Eq, 42);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!(d.index_cost.is_none());
        assert_eq!(d.chosen_cost(), d.scan_cost);
    }

    #[test]
    fn ne_predicate_never_uses_index() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Ne, 42);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!(d.index_cost.is_none());
    }

    #[test]
    fn unknown_column_neutral_selectivity() {
        let sel = estimate_selectivity(&table(100, true), "nope", CmpOp::Eq, 1);
        assert_eq!(sel, 0.5);
    }

    #[test]
    fn selectivity_ops_consistent() {
        let t = table(1000, true);
        let eq = estimate_selectivity(&t, "id", CmpOp::Eq, 500);
        let ne = estimate_selectivity(&t, "id", CmpOp::Ne, 500);
        assert!((eq + ne - 1.0).abs() < 1e-9);
        let lt = estimate_selectivity(&t, "id", CmpOp::Lt, 500);
        let ge = estimate_selectivity(&t, "id", CmpOp::Ge, 500);
        assert!((lt + ge - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crossover_exists() {
        // Somewhere between point and half the table, the decision must
        // flip exactly once as selectivity rises.
        let m = model();
        let t = table(10_000_000, true);
        let mut last = AccessPath::IndexLookup;
        let mut flips = 0;
        for exp in 0..=7 {
            let lit = 10i64.pow(exp);
            let d = choose_access(&m, &t, "id", CmpOp::Lt, lit);
            if d.path != last {
                flips += 1;
                last = d.path;
            }
        }
        assert_eq!(flips, 1, "expected exactly one crossover");
        assert_eq!(last, AccessPath::FullScan);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", AccessPath::IndexLookup), "index-lookup");
    }

    #[test]
    fn zone_survival_prunes_disjoint_segments() {
        // Four segments holding sorted keys: 0..250k each.
        let zones: Vec<ZoneMapMeta> = (0..4)
            .map(|i| ZoneMapMeta { rows: 250_000, min: i * 250_000, max: (i + 1) * 250_000 - 1 })
            .collect();
        assert!((zone_survival(&zones, CmpOp::Eq, 10) - 0.25).abs() < 1e-9);
        assert!((zone_survival(&zones, CmpOp::Lt, 500_000) - 0.5).abs() < 1e-9);
        assert!((zone_survival(&zones, CmpOp::Ge, 750_000) - 0.25).abs() < 1e-9);
        assert_eq!(zone_survival(&zones, CmpOp::Lt, 0), 0.0, "nothing below the min");
        assert_eq!(zone_survival(&[], CmpOp::Eq, 1), 1.0, "no stats, no pruning");
    }

    #[test]
    fn join_zone_overlap_prunes_probe_segments() {
        // Four sorted probe segments; a build side spanning only the
        // first quarter leaves one segment live.
        let zones: Vec<ZoneMapMeta> =
            (0..4).map(|i| ZoneMapMeta { rows: 1000, min: i * 1000, max: (i + 1) * 1000 - 1 }).collect();
        assert!((join_zone_overlap(&zones, 0, 999) - 0.25).abs() < 1e-9);
        assert!((join_zone_overlap(&zones, 500, 1500) - 0.5).abs() < 1e-9);
        assert_eq!(join_zone_overlap(&zones, 10_000, 20_000), 0.0);
        assert_eq!(join_zone_overlap(&zones, 0, 3999), 1.0);
        // Empty build range (lo > hi) prunes everything; no stats, no
        // pruning.
        assert_eq!(join_zone_overlap(&zones, 1, 0), 0.0);
        assert_eq!(join_zone_overlap(&[], 0, 10), 1.0);
        // The executor-side primitive agrees at the boundaries.
        let z = ZoneMapMeta { rows: 1, min: 10, max: 20 };
        assert!(z.overlaps(20, 30));
        assert!(z.overlaps(0, 10));
        assert!(!z.overlaps(21, 30));
        assert!(!z.overlaps(0, 9));
    }

    #[test]
    fn compressed_scan_cheaper_than_flat() {
        // Same table, same predicate: costing against the encoded bytes
        // (4x compression) + zone pruning must be strictly cheaper than
        // the flat-scan model on both objectives.
        let m = model();
        let t = table(10_000_000, false);
        let zones: Vec<ZoneMapMeta> = (0..10)
            .map(|i| ZoneMapMeta { rows: 1_000_000, min: i * 1_000_000, max: (i + 1) * 1_000_000 - 1 })
            .collect();
        let flat = choose_access(&m, &t, "id", CmpOp::Lt, 1_000_000);
        let seg = choose_access_segmented(
            &m,
            &t,
            "id",
            CmpOp::Lt,
            1_000_000,
            &zones,
            10_000_000 * 8 / 4, // 4x compressed
        );
        assert!(seg.scan_cost.time < flat.scan_cost.time);
        assert!(seg.scan_cost.energy.joules() < flat.scan_cost.energy.joules());
    }

    #[test]
    fn segmented_decision_respects_index_for_points() {
        let m = model();
        let t = table(10_000_000, true);
        let zones = [ZoneMapMeta { rows: 10_000_000, min: 0, max: 9_999_999 }];
        let d = choose_access_segmented(&m, &t, "id", CmpOp::Eq, 42, &zones, 10_000_000);
        assert_eq!(d.path, AccessPath::IndexLookup);
        // But a fully-prunable predicate makes the scan free-ish and
        // beats the index even for Eq.
        let cold = choose_access_segmented(&m, &t, "id", CmpOp::Eq, -5, &zones, 10_000_000);
        assert_eq!(cold.scan_cost.time.min(cold.chosen_cost().time), cold.chosen_cost().time);
    }
}
