//! Access-path selection: index lookup vs full scan (experiment E1).
//!
//! The paper's §IV example: "if a query can be answered using an index
//! lookup instead of a table scan, fewer cycles are spent on that
//! particular query" — i.e. classic cost-based access-path selection is
//! already energy optimization. This module makes the decision with the
//! dual-objective cost model, so the experiment can verify that the
//! time-optimal and energy-optimal choices coincide on one node.

use crate::catalog::TableMeta;
use crate::cost::{CostModel, PlanCost};
use haec_columnar::value::CmpOp;
use std::fmt;

/// The chosen access path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Scan all rows, filter on the fly.
    FullScan,
    /// Resolve via the secondary index.
    IndexLookup,
    /// Binary-search the disjoint sorted-segment zones, then the run
    /// boundaries inside the surviving segment — available only when the
    /// predicate column is the table's declared sort key.
    ZoneBinarySearch,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::FullScan => f.write_str("full-scan"),
            AccessPath::IndexLookup => f.write_str("index-lookup"),
            AccessPath::ZoneBinarySearch => f.write_str("zone-binary-search"),
        }
    }
}

/// The decision with every alternative costed.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessDecision {
    /// The chosen path.
    pub path: AccessPath,
    /// Estimated predicate selectivity.
    pub selectivity: f64,
    /// Cost of the scan alternative.
    pub scan_cost: PlanCost,
    /// Cost of the index alternative (`None` if no index exists).
    pub index_cost: Option<PlanCost>,
    /// Cost of the zone-binary-search alternative (`None` unless the
    /// column's layout is sorted — see [`sorted_layout`]).
    pub sorted_cost: Option<PlanCost>,
}

impl AccessDecision {
    /// The cost of the chosen path.
    pub fn chosen_cost(&self) -> PlanCost {
        match self.path {
            AccessPath::FullScan => self.scan_cost,
            AccessPath::IndexLookup => self.index_cost.expect("index path implies index cost"),
            AccessPath::ZoneBinarySearch => self.sorted_cost.expect("sorted path implies sorted cost"),
        }
    }
}

/// Estimates the selectivity of `column op literal` on `table`.
pub fn estimate_selectivity(table: &TableMeta, column: &str, op: CmpOp, literal: i64) -> f64 {
    let Some(col) = table.column(column) else {
        return 0.5; // unknown column: fall back to a neutral guess
    };
    match op {
        CmpOp::Eq => col.eq_selectivity(),
        CmpOp::Ne => 1.0 - col.eq_selectivity(),
        CmpOp::Lt => col.lt_selectivity(literal),
        CmpOp::Le => col.lt_selectivity(literal + 1),
        CmpOp::Gt => 1.0 - col.lt_selectivity(literal + 1),
        CmpOp::Ge => 1.0 - col.lt_selectivity(literal),
    }
}

/// Min/max statistics of one segment (or the delta tail) of a column —
/// what the storage layer's zone maps export to the planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneMapMeta {
    /// Rows covered by this zone.
    pub rows: u64,
    /// Smallest value in the zone.
    pub min: i64,
    /// Largest value in the zone.
    pub max: i64,
    /// The zone's rows are physically sorted ascending by this column —
    /// set only when the storage layer's sorting merge produced the
    /// segment (the delta tail is never sorted). Sorted zones admit
    /// in-segment binary search instead of a scan.
    pub sorted: bool,
}

impl ZoneMapMeta {
    /// Returns `true` if this zone's `[min, max]` intersects `[lo, hi]`
    /// — the join-pruning test: a probe segment whose key zone misses
    /// the build side's key range entirely cannot produce a match, so
    /// the executor skips it without touching a byte. `lo > hi` (an
    /// empty range) prunes everything.
    pub fn overlaps(&self, lo: i64, hi: i64) -> bool {
        lo <= hi && self.min <= hi && self.max >= lo
    }

    /// Returns `true` if a row matching `value op literal` may exist in
    /// this zone.
    pub fn may_match(&self, op: CmpOp, literal: i64) -> bool {
        match op {
            CmpOp::Eq => literal >= self.min && literal <= self.max,
            CmpOp::Ne => !(self.min == self.max && self.min == literal),
            CmpOp::Lt => self.min < literal,
            CmpOp::Le => self.min <= literal,
            CmpOp::Gt => self.max > literal,
            CmpOp::Ge => self.max >= literal,
        }
    }
}

/// Fraction of rows living in zones that survive pruning for
/// `value op literal` (1.0 when `zones` is empty — no statistics, no
/// pruning).
pub fn zone_survival(zones: &[ZoneMapMeta], op: CmpOp, literal: i64) -> f64 {
    let total: u64 = zones.iter().map(|z| z.rows).sum();
    if total == 0 {
        return 1.0;
    }
    let live: u64 = zones.iter().filter(|z| z.may_match(op, literal)).map(|z| z.rows).sum();
    live as f64 / total as f64
}

/// Fraction of rows living in zones whose key range intersects
/// `[lo, hi]` — the probe-side survival estimate for an equi-join
/// against a build side whose keys span `[lo, hi]` (1.0 when `zones` is
/// empty: no statistics, no pruning). This is the zone intersection the
/// executor's per-segment [`ZoneMapMeta::overlaps`] check realizes, so
/// the cost model and the runtime can never disagree on what survives.
pub fn join_zone_overlap(zones: &[ZoneMapMeta], lo: i64, hi: i64) -> f64 {
    let total: u64 = zones.iter().map(|z| z.rows).sum();
    if total == 0 {
        return 1.0;
    }
    let live: u64 = zones.iter().filter(|z| z.overlaps(lo, hi)).map(|z| z.rows).sum();
    live as f64 / total as f64
}

/// Returns `true` if `zones` describes a sorted layout on this column:
/// at least one sorted zone, and all sorted zones pairwise disjoint with
/// ascending ranges (in slice order), so a literal can be located by
/// binary search over the zone list. Unsorted zones (the delta tail)
/// may trail; the caller prices them as a residual scan.
pub fn sorted_layout(zones: &[ZoneMapMeta]) -> bool {
    let sorted: Vec<&ZoneMapMeta> = zones.iter().filter(|z| z.sorted && z.rows > 0).collect();
    !sorted.is_empty() && sorted.windows(2).all(|w| w[0].max <= w[1].min)
}

/// Chooses the access path on a **segmented, compressed** table: the
/// scan alternative is costed with [`CostModel::scan_compressed`] —
/// encoded bytes and zone-map survival rather than raw row width — so
/// scan-vs-index crossovers reflect the compressed footprint. When the
/// column's layout is sorted ([`sorted_layout`]), a third alternative is
/// costed with [`CostModel::sorted_scan`]: zone binary search plus
/// in-segment run binary search, with any unsorted tail rows priced as
/// a residual compressed scan.
pub fn choose_access_segmented(
    model: &CostModel,
    table: &TableMeta,
    column: &str,
    op: CmpOp,
    literal: i64,
    zones: &[ZoneMapMeta],
    encoded_bytes: u64,
) -> AccessDecision {
    let sel = estimate_selectivity(table, column, op, literal);
    let matches = (sel * table.rows as f64).ceil() as u64;
    let live = zone_survival(zones, op, literal);
    let scan_cost = model.scan_compressed(table.rows, encoded_bytes, sel, live);
    let indexed = table.column(column).map(|c| c.indexed).unwrap_or(false)
        && matches!(op, CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    let index_cost = indexed.then(|| model.index_lookup(matches, table.row_bytes));
    let sorted_cost = (sorted_layout(zones) && op != CmpOp::Ne).then(|| {
        let total_rows: u64 = zones.iter().map(|z| z.rows).sum::<u64>().max(1);
        let sorted_rows: u64 = zones.iter().filter(|z| z.sorted).map(|z| z.rows).sum();
        let segments = zones.iter().filter(|z| z.sorted).count() as u64;
        let frac = sorted_rows as f64 / total_rows as f64;
        let sorted_bytes = (encoded_bytes as f64 * frac).ceil() as u64;
        let mut cost = model.sorted_scan(sorted_rows, sorted_bytes, sel, segments);
        let unsorted_rows = total_rows - sorted_rows;
        if unsorted_rows > 0 {
            cost = cost + model.scan_compressed(unsorted_rows, encoded_bytes - sorted_bytes, sel, live);
        }
        cost
    });
    let mut path = AccessPath::FullScan;
    let mut best = scan_cost.time;
    if let Some(sc) = &sorted_cost {
        if sc.time < best {
            path = AccessPath::ZoneBinarySearch;
            best = sc.time;
        }
    }
    if let Some(ic) = &index_cost {
        if ic.time < best {
            path = AccessPath::IndexLookup;
        }
    }
    AccessDecision { path, selectivity: sel, scan_cost, index_cost, sorted_cost }
}

/// Chooses the access path for `column op literal` on `table`, by
/// predicted time (on a single node the energy ordering coincides; the
/// experiment verifies this).
pub fn choose_access(
    model: &CostModel,
    table: &TableMeta,
    column: &str,
    op: CmpOp,
    literal: i64,
) -> AccessDecision {
    let sel = estimate_selectivity(table, column, op, literal);
    let matches = (sel * table.rows as f64).ceil() as u64;
    let scan_cost = model.scan(table.rows, table.row_bytes, sel);
    let indexed = table.column(column).map(|c| c.indexed).unwrap_or(false)
        && matches!(op, CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    let index_cost = indexed.then(|| model.index_lookup(matches, table.row_bytes));
    let path = match &index_cost {
        Some(ic) if ic.time < scan_cost.time => AccessPath::IndexLookup,
        _ => AccessPath::FullScan,
    };
    AccessDecision { path, selectivity: sel, scan_cost, index_cost, sorted_cost: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnMeta;
    use haec_energy::machine::MachineSpec;

    fn table(rows: u64, indexed: bool) -> TableMeta {
        TableMeta {
            name: "orders".into(),
            rows,
            row_bytes: 8,
            columns: vec![ColumnMeta { name: "id".into(), ndv: rows, min: 0, max: rows as i64 - 1, indexed }],
        }
    }

    fn model() -> CostModel {
        CostModel::new(MachineSpec::commodity_2013())
    }

    #[test]
    fn point_query_uses_index() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Eq, 42);
        assert_eq!(d.path, AccessPath::IndexLookup);
        assert!(d.selectivity < 1e-6);
        // And the index is better on BOTH objectives (the E1 claim).
        let ic = d.index_cost.unwrap();
        assert!(ic.time < d.scan_cost.time);
        assert!(ic.energy.joules() < d.scan_cost.energy.joules());
    }

    #[test]
    fn broad_range_uses_scan() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Lt, 5_000_000);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!((d.selectivity - 0.5).abs() < 0.01);
        let ic = d.index_cost.unwrap();
        assert!(d.scan_cost.time < ic.time);
        assert!(d.scan_cost.energy.joules() < ic.energy.joules());
    }

    #[test]
    fn no_index_forces_scan() {
        let d = choose_access(&model(), &table(10_000_000, false), "id", CmpOp::Eq, 42);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!(d.index_cost.is_none());
        assert_eq!(d.chosen_cost(), d.scan_cost);
    }

    #[test]
    fn ne_predicate_never_uses_index() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Ne, 42);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!(d.index_cost.is_none());
    }

    #[test]
    fn unknown_column_neutral_selectivity() {
        let sel = estimate_selectivity(&table(100, true), "nope", CmpOp::Eq, 1);
        assert_eq!(sel, 0.5);
    }

    #[test]
    fn selectivity_ops_consistent() {
        let t = table(1000, true);
        let eq = estimate_selectivity(&t, "id", CmpOp::Eq, 500);
        let ne = estimate_selectivity(&t, "id", CmpOp::Ne, 500);
        assert!((eq + ne - 1.0).abs() < 1e-9);
        let lt = estimate_selectivity(&t, "id", CmpOp::Lt, 500);
        let ge = estimate_selectivity(&t, "id", CmpOp::Ge, 500);
        assert!((lt + ge - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crossover_exists() {
        // Somewhere between point and half the table, the decision must
        // flip exactly once as selectivity rises.
        let m = model();
        let t = table(10_000_000, true);
        let mut last = AccessPath::IndexLookup;
        let mut flips = 0;
        for exp in 0..=7 {
            let lit = 10i64.pow(exp);
            let d = choose_access(&m, &t, "id", CmpOp::Lt, lit);
            if d.path != last {
                flips += 1;
                last = d.path;
            }
        }
        assert_eq!(flips, 1, "expected exactly one crossover");
        assert_eq!(last, AccessPath::FullScan);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", AccessPath::IndexLookup), "index-lookup");
    }

    #[test]
    fn zone_survival_prunes_disjoint_segments() {
        // Four segments holding sorted keys: 0..250k each.
        let zones: Vec<ZoneMapMeta> = (0..4)
            .map(|i| ZoneMapMeta {
                rows: 250_000,
                min: i * 250_000,
                max: (i + 1) * 250_000 - 1,
                sorted: false,
            })
            .collect();
        assert!((zone_survival(&zones, CmpOp::Eq, 10) - 0.25).abs() < 1e-9);
        assert!((zone_survival(&zones, CmpOp::Lt, 500_000) - 0.5).abs() < 1e-9);
        assert!((zone_survival(&zones, CmpOp::Ge, 750_000) - 0.25).abs() < 1e-9);
        assert_eq!(zone_survival(&zones, CmpOp::Lt, 0), 0.0, "nothing below the min");
        assert_eq!(zone_survival(&[], CmpOp::Eq, 1), 1.0, "no stats, no pruning");
    }

    #[test]
    fn join_zone_overlap_prunes_probe_segments() {
        // Four sorted probe segments; a build side spanning only the
        // first quarter leaves one segment live.
        let zones: Vec<ZoneMapMeta> = (0..4)
            .map(|i| ZoneMapMeta { rows: 1000, min: i * 1000, max: (i + 1) * 1000 - 1, sorted: false })
            .collect();
        assert!((join_zone_overlap(&zones, 0, 999) - 0.25).abs() < 1e-9);
        assert!((join_zone_overlap(&zones, 500, 1500) - 0.5).abs() < 1e-9);
        assert_eq!(join_zone_overlap(&zones, 10_000, 20_000), 0.0);
        assert_eq!(join_zone_overlap(&zones, 0, 3999), 1.0);
        // Empty build range (lo > hi) prunes everything; no stats, no
        // pruning.
        assert_eq!(join_zone_overlap(&zones, 1, 0), 0.0);
        assert_eq!(join_zone_overlap(&[], 0, 10), 1.0);
        // The executor-side primitive agrees at the boundaries.
        let z = ZoneMapMeta { rows: 1, min: 10, max: 20, sorted: false };
        assert!(z.overlaps(20, 30));
        assert!(z.overlaps(0, 10));
        assert!(!z.overlaps(21, 30));
        assert!(!z.overlaps(0, 9));
    }

    #[test]
    fn compressed_scan_cheaper_than_flat() {
        // Same table, same predicate: costing against the encoded bytes
        // (4x compression) + zone pruning must be strictly cheaper than
        // the flat-scan model on both objectives.
        let m = model();
        let t = table(10_000_000, false);
        let zones: Vec<ZoneMapMeta> = (0..10)
            .map(|i| ZoneMapMeta {
                rows: 1_000_000,
                min: i * 1_000_000,
                max: (i + 1) * 1_000_000 - 1,
                sorted: false,
            })
            .collect();
        let flat = choose_access(&m, &t, "id", CmpOp::Lt, 1_000_000);
        let seg = choose_access_segmented(
            &m,
            &t,
            "id",
            CmpOp::Lt,
            1_000_000,
            &zones,
            10_000_000 * 8 / 4, // 4x compressed
        );
        assert!(seg.scan_cost.time < flat.scan_cost.time);
        assert!(seg.scan_cost.energy.joules() < flat.scan_cost.energy.joules());
    }

    #[test]
    fn segmented_decision_respects_index_for_points() {
        let m = model();
        let t = table(10_000_000, true);
        let zones = [ZoneMapMeta { rows: 10_000_000, min: 0, max: 9_999_999, sorted: false }];
        let d = choose_access_segmented(&m, &t, "id", CmpOp::Eq, 42, &zones, 10_000_000);
        assert_eq!(d.path, AccessPath::IndexLookup);
        // But a fully-prunable predicate makes the scan free-ish and
        // beats the index even for Eq.
        let cold = choose_access_segmented(&m, &t, "id", CmpOp::Eq, -5, &zones, 10_000_000);
        assert_eq!(cold.scan_cost.time.min(cold.chosen_cost().time), cold.chosen_cost().time);
    }

    #[test]
    fn sorted_layout_detection() {
        let z = |min: i64, max: i64, sorted: bool| ZoneMapMeta { rows: 1000, min, max, sorted };
        // Disjoint ascending sorted segments + unsorted delta tail.
        assert!(sorted_layout(&[z(0, 9, true), z(10, 19, true), z(5, 25, false)]));
        // A duplicate key straddling the boundary is still sorted.
        assert!(sorted_layout(&[z(0, 10, true), z(10, 19, true)]));
        // Overlapping sorted zones are not a sorted layout.
        assert!(!sorted_layout(&[z(0, 12, true), z(10, 19, true)]));
        // No sorted zone at all.
        assert!(!sorted_layout(&[z(0, 9, false), z(10, 19, false)]));
        assert!(!sorted_layout(&[]));
        // Zero-row sorted zones don't count.
        assert!(!sorted_layout(&[ZoneMapMeta { rows: 0, min: 0, max: 9, sorted: true }]));
    }

    #[test]
    fn sorted_point_access_beats_scan_and_index() {
        // A 10M-row sorted layout with no index: the point lookup must
        // choose zone binary search over the scan on both objectives —
        // the layout itself is the index.
        let m = model();
        let t = table(10_000_000, false);
        let zones: Vec<ZoneMapMeta> = (0..160)
            .map(|i| ZoneMapMeta { rows: 62_500, min: i * 62_500, max: (i + 1) * 62_500 - 1, sorted: true })
            .collect();
        let d = choose_access_segmented(&m, &t, "id", CmpOp::Eq, 42, &zones, 10_000_000 * 2);
        assert_eq!(d.path, AccessPath::ZoneBinarySearch);
        let sc = d.sorted_cost.unwrap();
        assert!(sc.time < d.scan_cost.time);
        assert!(sc.energy.joules() < d.scan_cost.energy.joules());
        assert_eq!(d.chosen_cost(), sc);
        // With a secondary index present the cheaper of the two O(log)
        // alternatives wins — never the scan.
        let ti = table(10_000_000, true);
        let di = choose_access_segmented(&m, &ti, "id", CmpOp::Eq, 42, &zones, 10_000_000 * 2);
        assert_ne!(di.path, AccessPath::FullScan);
        assert_eq!(format!("{}", AccessPath::ZoneBinarySearch), "zone-binary-search");
        // At full selectivity binary search saves almost nothing: both
        // paths stream every encoded byte, so the advantage collapses
        // from orders of magnitude (point) to the per-row predicate
        // evaluation the range path skips.
        let broad = choose_access_segmented(&m, &t, "id", CmpOp::Ge, 0, &zones, 10_000_000 * 2);
        let broad_ratio = broad.sorted_cost.unwrap().time.as_secs_f64() / broad.scan_cost.time.as_secs_f64();
        let point_ratio = sc.time.as_secs_f64() / d.scan_cost.time.as_secs_f64();
        assert!(broad_ratio > 0.5, "full-selectivity sorted path must pay the full stream");
        assert!(point_ratio < 0.1 && point_ratio < broad_ratio, "point advantage must dominate");
        // Ne is never contiguous → no sorted alternative.
        let ne = choose_access_segmented(&m, &t, "id", CmpOp::Ne, 42, &zones, 10_000_000 * 2);
        assert!(ne.sorted_cost.is_none());
    }

    #[test]
    fn sorted_cost_prices_unsorted_tail() {
        // Same layout with a large unsorted delta tail: the sorted
        // alternative must get strictly more expensive than without it.
        let m = model();
        let t = table(2_000_000, false);
        let mut zones: Vec<ZoneMapMeta> = (0..16)
            .map(|i| ZoneMapMeta { rows: 62_500, min: i * 62_500, max: (i + 1) * 62_500 - 1, sorted: true })
            .collect();
        let clean = choose_access_segmented(&m, &t, "id", CmpOp::Eq, 42, &zones, 2_000_000);
        zones.push(ZoneMapMeta { rows: 1_000_000, min: 0, max: 999_999, sorted: false });
        let tailed = choose_access_segmented(&m, &t, "id", CmpOp::Eq, 42, &zones, 3_000_000);
        let (c, t2) = (clean.sorted_cost.unwrap(), tailed.sorted_cost.unwrap());
        assert!(t2.time > c.time, "unsorted tail must be billed as a residual scan");
        assert!(t2.energy.joules() > c.energy.joules());
    }
}
