//! Access-path selection: index lookup vs full scan (experiment E1).
//!
//! The paper's §IV example: "if a query can be answered using an index
//! lookup instead of a table scan, fewer cycles are spent on that
//! particular query" — i.e. classic cost-based access-path selection is
//! already energy optimization. This module makes the decision with the
//! dual-objective cost model, so the experiment can verify that the
//! time-optimal and energy-optimal choices coincide on one node.

use crate::catalog::TableMeta;
use crate::cost::{CostModel, PlanCost};
use haec_columnar::value::CmpOp;
use std::fmt;

/// The chosen access path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Scan all rows, filter on the fly.
    FullScan,
    /// Resolve via the secondary index.
    IndexLookup,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::FullScan => f.write_str("full-scan"),
            AccessPath::IndexLookup => f.write_str("index-lookup"),
        }
    }
}

/// The decision with both alternatives costed.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessDecision {
    /// The chosen path.
    pub path: AccessPath,
    /// Estimated predicate selectivity.
    pub selectivity: f64,
    /// Cost of the scan alternative.
    pub scan_cost: PlanCost,
    /// Cost of the index alternative (`None` if no index exists).
    pub index_cost: Option<PlanCost>,
}

impl AccessDecision {
    /// The cost of the chosen path.
    pub fn chosen_cost(&self) -> PlanCost {
        match self.path {
            AccessPath::FullScan => self.scan_cost,
            AccessPath::IndexLookup => self.index_cost.expect("index path implies index cost"),
        }
    }
}

/// Estimates the selectivity of `column op literal` on `table`.
pub fn estimate_selectivity(table: &TableMeta, column: &str, op: CmpOp, literal: i64) -> f64 {
    let Some(col) = table.column(column) else {
        return 0.5; // unknown column: fall back to a neutral guess
    };
    match op {
        CmpOp::Eq => col.eq_selectivity(),
        CmpOp::Ne => 1.0 - col.eq_selectivity(),
        CmpOp::Lt => col.lt_selectivity(literal),
        CmpOp::Le => col.lt_selectivity(literal + 1),
        CmpOp::Gt => 1.0 - col.lt_selectivity(literal + 1),
        CmpOp::Ge => 1.0 - col.lt_selectivity(literal),
    }
}

/// Chooses the access path for `column op literal` on `table`, by
/// predicted time (on a single node the energy ordering coincides; the
/// experiment verifies this).
pub fn choose_access(
    model: &CostModel,
    table: &TableMeta,
    column: &str,
    op: CmpOp,
    literal: i64,
) -> AccessDecision {
    let sel = estimate_selectivity(table, column, op, literal);
    let matches = (sel * table.rows as f64).ceil() as u64;
    let scan_cost = model.scan(table.rows, table.row_bytes, sel);
    let indexed = table.column(column).map(|c| c.indexed).unwrap_or(false)
        && matches!(op, CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    let index_cost = indexed.then(|| model.index_lookup(matches, table.row_bytes));
    let path = match &index_cost {
        Some(ic) if ic.time < scan_cost.time => AccessPath::IndexLookup,
        _ => AccessPath::FullScan,
    };
    AccessDecision { path, selectivity: sel, scan_cost, index_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnMeta;
    use haec_energy::machine::MachineSpec;

    fn table(rows: u64, indexed: bool) -> TableMeta {
        TableMeta {
            name: "orders".into(),
            rows,
            row_bytes: 8,
            columns: vec![ColumnMeta {
                name: "id".into(),
                ndv: rows,
                min: 0,
                max: rows as i64 - 1,
                indexed,
            }],
        }
    }

    fn model() -> CostModel {
        CostModel::new(MachineSpec::commodity_2013())
    }

    #[test]
    fn point_query_uses_index() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Eq, 42);
        assert_eq!(d.path, AccessPath::IndexLookup);
        assert!(d.selectivity < 1e-6);
        // And the index is better on BOTH objectives (the E1 claim).
        let ic = d.index_cost.unwrap();
        assert!(ic.time < d.scan_cost.time);
        assert!(ic.energy.joules() < d.scan_cost.energy.joules());
    }

    #[test]
    fn broad_range_uses_scan() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Lt, 5_000_000);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!((d.selectivity - 0.5).abs() < 0.01);
        let ic = d.index_cost.unwrap();
        assert!(d.scan_cost.time < ic.time);
        assert!(d.scan_cost.energy.joules() < ic.energy.joules());
    }

    #[test]
    fn no_index_forces_scan() {
        let d = choose_access(&model(), &table(10_000_000, false), "id", CmpOp::Eq, 42);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!(d.index_cost.is_none());
        assert_eq!(d.chosen_cost(), d.scan_cost);
    }

    #[test]
    fn ne_predicate_never_uses_index() {
        let d = choose_access(&model(), &table(10_000_000, true), "id", CmpOp::Ne, 42);
        assert_eq!(d.path, AccessPath::FullScan);
        assert!(d.index_cost.is_none());
    }

    #[test]
    fn unknown_column_neutral_selectivity() {
        let sel = estimate_selectivity(&table(100, true), "nope", CmpOp::Eq, 1);
        assert_eq!(sel, 0.5);
    }

    #[test]
    fn selectivity_ops_consistent() {
        let t = table(1000, true);
        let eq = estimate_selectivity(&t, "id", CmpOp::Eq, 500);
        let ne = estimate_selectivity(&t, "id", CmpOp::Ne, 500);
        assert!((eq + ne - 1.0).abs() < 1e-9);
        let lt = estimate_selectivity(&t, "id", CmpOp::Lt, 500);
        let ge = estimate_selectivity(&t, "id", CmpOp::Ge, 500);
        assert!((lt + ge - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crossover_exists() {
        // Somewhere between point and half the table, the decision must
        // flip exactly once as selectivity rises.
        let m = model();
        let t = table(10_000_000, true);
        let mut last = AccessPath::IndexLookup;
        let mut flips = 0;
        for exp in 0..=7 {
            let lit = 10i64.pow(exp);
            let d = choose_access(&m, &t, "id", CmpOp::Lt, lit);
            if d.path != last {
                flips += 1;
                last = d.path;
            }
        }
        assert_eq!(flips, 1, "expected exactly one crossover");
        assert_eq!(last, AccessPath::FullScan);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", AccessPath::IndexLookup), "index-lookup");
    }
}
