//! Join ordering at three effort levels: exhaustive DP, greedy operator
//! ordering, and a linear left-deep heuristic.
//!
//! The paper (§II) observes that web-scale queries join "100s or even
//! 1 000s of (weakly structured) tables" and that "current compilation
//! (especially optimization) components … are not able to cope with this
//! situation". Experiment E8 quantifies it: Selinger-style dynamic
//! programming explodes beyond ~13 relations, while the greedy and
//! left-deep planners keep planning time civil at 10 000+ tables at a
//! bounded plan-quality penalty.

use std::collections::HashMap;
use std::fmt;

/// A join-query graph: relation cardinalities plus edge selectivities.
#[derive(Clone, Debug)]
pub struct JoinGraph {
    rows: Vec<f64>,
    adj: Vec<HashMap<usize, f64>>,
}

impl JoinGraph {
    /// Creates a graph over relations with the given row counts.
    pub fn new(rows: Vec<f64>) -> Self {
        let n = rows.len();
        assert!(n > 0, "need at least one relation");
        JoinGraph { rows, adj: vec![HashMap::new(); n] }
    }

    /// Adds a join edge with selectivity `sel` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, indices are out of range, or `sel` is not in
    /// `(0, 1]`.
    pub fn add_edge(&mut self, a: usize, b: usize, sel: f64) {
        assert_ne!(a, b, "no self joins");
        assert!(a < self.rows.len() && b < self.rows.len(), "relation out of range");
        assert!(sel > 0.0 && sel <= 1.0, "selectivity must be in (0,1]");
        self.adj[a].insert(b, sel);
        self.adj[b].insert(a, sel);
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the graph has no relations (never for public
    /// constructors).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A chain query `R0 – R1 – … – R(n-1)`.
    pub fn chain(n: usize, rows_each: f64, sel: f64) -> Self {
        let mut g = JoinGraph::new(vec![rows_each; n]);
        for i in 1..n {
            g.add_edge(i - 1, i, sel);
        }
        g
    }

    /// A star query: relation 0 is the fact table; `n - 1` dimensions
    /// hang off it with foreign-key selectivity `1 / dim_rows`.
    pub fn star(n: usize, fact_rows: f64, dim_rows: f64) -> Self {
        assert!(n >= 2, "a star needs a fact and at least one dimension");
        let mut rows = vec![dim_rows; n];
        rows[0] = fact_rows;
        let mut g = JoinGraph::new(rows);
        for d in 1..n {
            g.add_edge(0, d, 1.0 / dim_rows);
        }
        g
    }
}

/// Summary of a produced join plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanSummary {
    /// Sum of intermediate result cardinalities (the C_out metric).
    pub cout: f64,
    /// Cardinality of the final result.
    pub final_card: f64,
    /// Number of join operators (= relations − 1 for connected inputs).
    pub joins: usize,
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C_out={:.3e}, |result|={:.3e}, {} joins", self.cout, self.final_card, self.joins)
    }
}

/// Maximum relation count accepted by [`plan_dp`] (2^n subsets).
pub const DP_MAX_RELATIONS: usize = 16;

/// Exhaustive bushy dynamic programming over connected subgraphs
/// (Selinger-style with C_out cost).
///
/// # Panics
///
/// Panics if the graph exceeds [`DP_MAX_RELATIONS`] relations — that is
/// the experiment's point; use [`plan_greedy`] instead.
pub fn plan_dp(g: &JoinGraph) -> PlanSummary {
    let n = g.len();
    assert!(n <= DP_MAX_RELATIONS, "DP planner is exponential; {n} relations exceed {DP_MAX_RELATIONS}");
    if n == 1 {
        return PlanSummary { cout: 0.0, final_card: g.rows[0], joins: 0 };
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // card[mask]: cardinality of joining exactly `mask`.
    let mut card = vec![0.0f64; (full as usize) + 1];
    for i in 0..n {
        card[1 << i] = g.rows[i];
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let mut sel = 1.0;
        for (j, s) in &g.adj[i] {
            if rest & (1 << j) != 0 {
                sel *= s;
            }
        }
        card[mask as usize] = card[rest as usize] * g.rows[i] * sel;
    }

    // best[mask]: minimal C_out to produce `mask`.
    let mut best = vec![f64::INFINITY; (full as usize) + 1];
    for i in 0..n {
        best[1 << i] = 0.0;
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        // Enumerate proper sub-splits (s, mask\s); canonical: s contains
        // the lowest bit to halve the work.
        let low = mask & mask.wrapping_neg();
        let mut s = (mask - 1) & mask;
        let mut best_here = f64::INFINITY;
        while s != 0 {
            if s & low != 0 {
                let t = mask & !s;
                if t != 0 && best[s as usize].is_finite() && best[t as usize].is_finite() {
                    // Require connectivity between the halves (no cross
                    // products unless the graph forces them; star/chain
                    // graphs never do).
                    if connected_between(g, s, t) {
                        let c = best[s as usize] + best[t as usize] + card[mask as usize];
                        if c < best_here {
                            best_here = c;
                        }
                    }
                }
            }
            s = (s - 1) & mask;
        }
        best[mask as usize] = best_here;
    }
    PlanSummary { cout: best[full as usize], final_card: card[full as usize], joins: n - 1 }
}

fn connected_between(g: &JoinGraph, s: u32, t: u32) -> bool {
    let mut bits = s;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        for j in g.adj[i].keys() {
            if t & (1 << j) != 0 {
                return true;
            }
        }
    }
    false
}

/// Greedy operator ordering (GOO): repeatedly merge the connected pair
/// with the smallest join result. O(n·E) worst case — polynomial, good
/// plans in practice.
pub fn plan_greedy(g: &JoinGraph) -> PlanSummary {
    let n = g.len();
    #[derive(Clone)]
    struct Comp {
        card: f64,
        edges: HashMap<usize, f64>,
    }
    let mut comps: Vec<Option<Comp>> =
        (0..n).map(|i| Some(Comp { card: g.rows[i], edges: g.adj[i].clone() })).collect();
    let mut alive = n;
    let mut cout = 0.0;
    let mut final_card = g.rows[0];

    while alive > 1 {
        // Find the cheapest merge over current edges.
        let mut bests: Option<(f64, usize, usize)> = None;
        for (a, slot) in comps.iter().enumerate() {
            let Some(ca) = slot else { continue };
            for (&b, &sel) in &ca.edges {
                if b <= a {
                    continue;
                }
                let cb = comps[b].as_ref().expect("edge to dead component");
                let merged = ca.card * cb.card * sel;
                if bests.is_none_or(|(c, _, _)| merged < c) {
                    bests = Some((merged, a, b));
                }
            }
        }
        // Disconnected graph: cross-product the two smallest components.
        let (merged_card, a, b) = match bests {
            Some(x) => x,
            None => {
                let mut ids: Vec<usize> =
                    comps.iter().enumerate().filter(|(_, c)| c.is_some()).map(|(i, _)| i).collect();
                ids.sort_by(|&x, &y| {
                    comps[x].as_ref().unwrap().card.partial_cmp(&comps[y].as_ref().unwrap().card).unwrap()
                });
                let (a, b) = (ids[0], ids[1]);
                let card = comps[a].as_ref().unwrap().card * comps[b].as_ref().unwrap().card;
                (card, a.min(b), a.max(b))
            }
        };
        let cb = comps[b].take().expect("b alive");
        let ca = comps[a].as_mut().expect("a alive");
        // Merge edge maps: neighbors of either component now neighbor a,
        // with multiplied selectivities where both touched them.
        ca.edges.remove(&b);
        for (nb, sel) in cb.edges {
            if nb == a {
                continue;
            }
            *ca.edges.entry(nb).or_insert(1.0) *= sel;
        }
        ca.card = merged_card;
        // Repoint neighbors from b to a.
        let neighbor_ids: Vec<usize> = ca.edges.keys().copied().collect();
        for nb in neighbor_ids {
            let edge_map = &mut comps[nb].as_mut().expect("neighbor alive").edges;
            let from_b = edge_map.remove(&b);
            let entry = edge_map.entry(a).or_insert(1.0);
            if let Some(sel) = from_b {
                *entry *= sel;
            }
            // Ensure symmetry when neighbor only knew b.
        }
        // Rebuild symmetric entries for a (a's map may have gained nb
        // entries whose reverse edges were just fixed above).
        cout += merged_card;
        final_card = merged_card;
        alive -= 1;
    }
    PlanSummary { cout, final_card, joins: n - 1 }
}

/// Left-deep heuristic: start from the smallest relation, then always
/// append the smallest relation *connected* to the current prefix
/// (falling back to the smallest remaining one when the graph is
/// disconnected). O((n + E) log n) — the only planner whose cost stays
/// flat at catalog scale.
pub fn plan_left_deep(g: &JoinGraph) -> PlanSummary {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.len();
    let start = (0..n).min_by(|&a, &b| g.rows[a].partial_cmp(&g.rows[b]).unwrap()).expect("non-empty graph");

    let mut joined = vec![false; n];
    // Pending selectivity between each relation and the current prefix.
    let mut pending: Vec<f64> = vec![1.0; n];
    // Min-heap of (rows, rel) candidates connected to the prefix;
    // entries may be stale (already joined) and are skipped lazily.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let key = |rows: f64| rows.min(u64::MAX as f64) as u64;

    let mut card = g.rows[start];
    joined[start] = true;
    for (&j, &s) in &g.adj[start] {
        pending[j] *= s;
        heap.push(Reverse((key(g.rows[j]), j)));
    }

    let mut cout = 0.0;
    let mut remaining = n - 1;
    while remaining > 0 {
        // Next connected relation, or smallest unjoined (cross product).
        let rel = loop {
            match heap.pop() {
                Some(Reverse((_, r))) if joined[r] => continue,
                Some(Reverse((_, r))) => break r,
                None => {
                    break (0..n)
                        .filter(|&r| !joined[r])
                        .min_by(|&a, &b| g.rows[a].partial_cmp(&g.rows[b]).unwrap())
                        .expect("remaining > 0");
                }
            }
        };
        card = card * g.rows[rel] * pending[rel];
        cout += card;
        joined[rel] = true;
        remaining -= 1;
        for (&j, &s) in &g.adj[rel] {
            if !joined[j] {
                pending[j] *= s;
                heap.push(Reverse((key(g.rows[j]), j)));
            }
        }
    }
    PlanSummary { cout, final_card: card, joins: n - 1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_relation() {
        let g = JoinGraph::new(vec![100.0]);
        let p = plan_dp(&g);
        assert_eq!(p.joins, 0);
        assert_eq!(p.final_card, 100.0);
        assert_eq!(p.cout, 0.0);
    }

    #[test]
    fn two_relation_join() {
        let mut g = JoinGraph::new(vec![1000.0, 100.0]);
        g.add_edge(0, 1, 0.01);
        for p in [plan_dp(&g), plan_greedy(&g), plan_left_deep(&g)] {
            assert_eq!(p.joins, 1);
            assert!((p.final_card - 1000.0).abs() < 1e-6, "{p}");
            assert!((p.cout - 1000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn final_cardinality_is_plan_invariant() {
        // Whatever the order, the final result size is the same.
        let g = JoinGraph::star(6, 1_000_000.0, 1000.0);
        let dp = plan_dp(&g);
        let gr = plan_greedy(&g);
        let ld = plan_left_deep(&g);
        assert!((dp.final_card - gr.final_card).abs() / dp.final_card < 1e-9);
        assert!((dp.final_card - ld.final_card).abs() / dp.final_card < 1e-9);
    }

    #[test]
    fn dp_is_never_worse() {
        for g in [JoinGraph::chain(8, 10_000.0, 0.001), JoinGraph::star(8, 1_000_000.0, 500.0), {
            let mut g = JoinGraph::new(vec![10.0, 1e6, 1e3, 1e5, 50.0]);
            g.add_edge(0, 1, 0.1);
            g.add_edge(1, 2, 0.001);
            g.add_edge(2, 3, 0.01);
            g.add_edge(3, 4, 0.5);
            g.add_edge(0, 4, 0.2);
            g
        }] {
            let dp = plan_dp(&g).cout;
            let gr = plan_greedy(&g).cout;
            let ld = plan_left_deep(&g).cout;
            assert!(dp <= gr * (1.0 + 1e-9), "dp {dp} > greedy {gr}");
            assert!(dp <= ld * (1.0 + 1e-9), "dp {dp} > left-deep {ld}");
        }
    }

    #[test]
    fn greedy_beats_left_deep_on_chains() {
        // On chains with shrinking joins, greedy's local choice tracks
        // the good plan while size-ordered left-deep creates cross-ish
        // intermediates.
        let g = JoinGraph::chain(10, 100_000.0, 1e-4);
        let gr = plan_greedy(&g).cout;
        let ld = plan_left_deep(&g).cout;
        assert!(gr <= ld, "greedy {gr} vs left-deep {ld}");
    }

    #[test]
    fn greedy_handles_thousands_of_relations() {
        let g = JoinGraph::star(2_000, 1e7, 1_000.0);
        let p = plan_greedy(&g);
        assert_eq!(p.joins, 1_999);
        assert!(p.cout.is_finite());
    }

    #[test]
    fn left_deep_handles_ten_thousand_relations() {
        let g = JoinGraph::star(10_000, 1e7, 1_000.0);
        let p = plan_left_deep(&g);
        assert_eq!(p.joins, 9_999);
        assert!(p.cout.is_finite());
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn dp_rejects_large_graphs() {
        let g = JoinGraph::star(20, 1e6, 100.0);
        let _ = plan_dp(&g);
    }

    #[test]
    fn disconnected_graph_cross_products() {
        let g = JoinGraph::new(vec![10.0, 20.0]); // no edges
        let p = plan_greedy(&g);
        assert_eq!(p.final_card, 200.0);
        let p = plan_left_deep(&g);
        assert_eq!(p.final_card, 200.0);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn bad_selectivity_panics() {
        let mut g = JoinGraph::new(vec![1.0, 1.0]);
        g.add_edge(0, 1, 0.0);
    }

    #[test]
    fn display() {
        let p = PlanSummary { cout: 1e6, final_card: 10.0, joins: 3 };
        assert!(format!("{p}").contains("3 joins"));
    }
}
