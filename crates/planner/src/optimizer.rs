//! Energy-constrained plan selection: the decision logic of the paper's
//! Fig. 2.
//!
//! Given candidate plans costed in (time, energy), the optimizer
//! supports the two constrained modes the paper describes — fastest plan
//! within an energy budget, cheapest plan within a deadline — plus the
//! Pareto frontier for inspection.

use crate::cost::PlanCost;
use std::fmt;
use std::time::Duration;

use haec_energy::units::Joules;

/// The optimization mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Goal {
    /// Minimize time, unconstrained.
    MinTime,
    /// Minimize energy, unconstrained.
    MinEnergy,
    /// Minimize time subject to an energy budget per query.
    MinTimeUnderEnergyBudget(
        /// The budget.
        Joules,
    ),
    /// Minimize energy subject to a response-time deadline.
    MinEnergyUnderDeadline(
        /// The deadline.
        Duration,
    ),
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Goal::MinTime => f.write_str("min-time"),
            Goal::MinEnergy => f.write_str("min-energy"),
            Goal::MinTimeUnderEnergyBudget(b) => write!(f, "min-time|E≤{:.2}J", b.joules()),
            Goal::MinEnergyUnderDeadline(d) => write!(f, "min-energy|T≤{}ms", d.as_millis()),
        }
    }
}

/// Why no plan satisfied the goal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChooseError {
    /// The candidate list was empty.
    NoCandidates,
    /// No candidate met the constraint (the caller should relax it —
    /// "the individual response time of a query may suffer", §IV).
    Infeasible,
}

impl fmt::Display for ChooseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChooseError::NoCandidates => f.write_str("no candidate plans"),
            ChooseError::Infeasible => f.write_str("no plan satisfies the constraint"),
        }
    }
}

impl std::error::Error for ChooseError {}

/// Picks the index of the best candidate under `goal`.
///
/// # Errors
///
/// [`ChooseError::NoCandidates`] on an empty slice;
/// [`ChooseError::Infeasible`] if the constraint excludes every plan.
pub fn choose(candidates: &[PlanCost], goal: Goal) -> Result<usize, ChooseError> {
    if candidates.is_empty() {
        return Err(ChooseError::NoCandidates);
    }
    let indexed = candidates.iter().enumerate();
    let best = match goal {
        Goal::MinTime => indexed.min_by(|a, b| a.1.time.cmp(&b.1.time)),
        Goal::MinEnergy => indexed
            .min_by(|a, b| a.1.energy.joules().partial_cmp(&b.1.energy.joules()).expect("energy is not NaN")),
        Goal::MinTimeUnderEnergyBudget(budget) => indexed
            .filter(|(_, c)| c.energy.joules() <= budget.joules())
            .min_by(|a, b| a.1.time.cmp(&b.1.time)),
        Goal::MinEnergyUnderDeadline(deadline) => indexed
            .filter(|(_, c)| c.time <= deadline)
            .min_by(|a, b| a.1.energy.joules().partial_cmp(&b.1.energy.joules()).expect("energy is not NaN")),
    };
    best.map(|(i, _)| i).ok_or(ChooseError::Infeasible)
}

/// Returns the indices of Pareto-optimal candidates (no other plan is
/// both faster and cheaper), sorted by ascending time.
pub fn pareto_frontier(candidates: &[PlanCost]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    idx.sort_by(|&a, &b| {
        candidates[a]
            .time
            .cmp(&candidates[b].time)
            .then(candidates[a].energy.joules().partial_cmp(&candidates[b].energy.joules()).expect("no NaN"))
    });
    let mut frontier = Vec::new();
    let mut best_energy = f64::INFINITY;
    for i in idx {
        let e = candidates[i].energy.joules();
        if e < best_energy {
            frontier.push(i);
            best_energy = e;
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans() -> Vec<PlanCost> {
        vec![
            // 0: fast & hungry
            PlanCost { time: Duration::from_millis(10), energy: Joules::new(50.0) },
            // 1: slow & frugal
            PlanCost { time: Duration::from_millis(100), energy: Joules::new(5.0) },
            // 2: middle
            PlanCost { time: Duration::from_millis(40), energy: Joules::new(20.0) },
            // 3: dominated by 2 (slower AND hungrier)
            PlanCost { time: Duration::from_millis(60), energy: Joules::new(30.0) },
        ]
    }

    #[test]
    fn unconstrained_goals() {
        let p = plans();
        assert_eq!(choose(&p, Goal::MinTime).unwrap(), 0);
        assert_eq!(choose(&p, Goal::MinEnergy).unwrap(), 1);
    }

    #[test]
    fn budget_tightens_choice() {
        let p = plans();
        // Generous budget: fastest plan.
        assert_eq!(choose(&p, Goal::MinTimeUnderEnergyBudget(Joules::new(100.0))).unwrap(), 0);
        // 25 J budget excludes plan 0: plan 2 is the fastest remaining.
        assert_eq!(choose(&p, Goal::MinTimeUnderEnergyBudget(Joules::new(25.0))).unwrap(), 2);
        // 10 J: only plan 1 qualifies.
        assert_eq!(choose(&p, Goal::MinTimeUnderEnergyBudget(Joules::new(10.0))).unwrap(), 1);
        // 1 J: infeasible.
        assert_eq!(
            choose(&p, Goal::MinTimeUnderEnergyBudget(Joules::new(1.0))).unwrap_err(),
            ChooseError::Infeasible
        );
    }

    #[test]
    fn deadline_mirrors_budget() {
        let p = plans();
        assert_eq!(choose(&p, Goal::MinEnergyUnderDeadline(Duration::from_millis(200))).unwrap(), 1);
        assert_eq!(choose(&p, Goal::MinEnergyUnderDeadline(Duration::from_millis(50))).unwrap(), 2);
        assert_eq!(choose(&p, Goal::MinEnergyUnderDeadline(Duration::from_millis(15))).unwrap(), 0);
        assert!(choose(&p, Goal::MinEnergyUnderDeadline(Duration::from_millis(1))).is_err());
    }

    #[test]
    fn budget_sweep_is_monotone_in_time() {
        // Fig. 2's shape: as the energy budget shrinks, chosen-plan time
        // can only grow.
        let p = plans();
        let budgets = [100.0, 40.0, 25.0, 12.0, 6.0];
        let mut last = Duration::ZERO;
        for b in budgets {
            let i = choose(&p, Goal::MinTimeUnderEnergyBudget(Joules::new(b))).unwrap();
            assert!(p[i].time >= last, "time decreased at budget {b}");
            last = p[i].time;
        }
    }

    #[test]
    fn empty_candidates() {
        assert_eq!(choose(&[], Goal::MinTime).unwrap_err(), ChooseError::NoCandidates);
    }

    #[test]
    fn pareto_excludes_dominated() {
        let p = plans();
        let f = pareto_frontier(&p);
        assert_eq!(f, vec![0, 2, 1], "sorted by time, dominated plan 3 excluded");
    }

    #[test]
    fn pareto_single_and_empty() {
        assert!(pareto_frontier(&[]).is_empty());
        let one = [PlanCost { time: Duration::from_millis(1), energy: Joules::new(1.0) }];
        assert_eq!(pareto_frontier(&one), vec![0]);
    }

    #[test]
    fn pareto_keeps_ties_minimal() {
        let p = [
            PlanCost { time: Duration::from_millis(10), energy: Joules::new(10.0) },
            PlanCost { time: Duration::from_millis(10), energy: Joules::new(9.0) },
        ];
        let f = pareto_frontier(&p);
        assert_eq!(f, vec![1]);
    }

    #[test]
    fn displays() {
        assert!(format!("{}", Goal::MinTimeUnderEnergyBudget(Joules::new(3.0))).contains("3.00"));
        assert!(format!("{}", ChooseError::Infeasible).contains("constraint"));
    }
}
