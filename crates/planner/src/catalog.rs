//! Planner-facing catalog: table and column statistics.
//!
//! Includes a synthetic catalog generator able to emit the ">10 000
//! tables" scenarios of §II ("SAP ERP shows 50 000 tables … 1 000s of
//! weakly structured tables within a single database query").

use std::collections::HashMap;
use std::fmt;

/// Statistics of one column as the optimizer sees them.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Number of distinct values.
    pub ndv: u64,
    /// Minimum value (integer domain).
    pub min: i64,
    /// Maximum value.
    pub max: i64,
    /// Whether a secondary index exists on this column.
    pub indexed: bool,
}

impl ColumnMeta {
    /// Selectivity of `= literal` under uniformity.
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndv == 0 {
            0.0
        } else {
            1.0 / self.ndv as f64
        }
    }

    /// Selectivity of `< x` by range interpolation.
    pub fn lt_selectivity(&self, x: i64) -> f64 {
        if self.max <= self.min {
            return 0.5;
        }
        ((x - self.min) as f64 / (self.max - self.min + 1) as f64).clamp(0.0, 1.0)
    }
}

/// Statistics of one table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Bytes per row (all columns, uncompressed).
    pub row_bytes: u64,
    /// Column statistics.
    pub columns: Vec<ColumnMeta>,
}

impl TableMeta {
    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Total table size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.rows * self.row_bytes
    }
}

/// The planner catalog.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, table: TableMeta) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(name)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Returns `true` if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "catalog({} tables)", self.tables.len())
    }
}

/// Generates a synthetic star/snowflake-ish catalog: one fact table and
/// `dimensions` dimension tables of geometrically varying sizes, each
/// with a key column (indexed) and a payload column. Deterministic.
pub fn synthetic_star_catalog(dimensions: usize, fact_rows: u64) -> Catalog {
    let mut cat = Catalog::new();
    let mut fact_cols = vec![ColumnMeta {
        name: "fact_id".into(),
        ndv: fact_rows,
        min: 0,
        max: fact_rows as i64 - 1,
        indexed: true,
    }];
    for d in 0..dimensions {
        // Dimension sizes cycle over 4 decades: 1e2..1e5 rows.
        let rows = 10u64.pow(2 + (d % 4) as u32);
        let name = format!("dim{d}");
        cat.register(TableMeta {
            name: name.clone(),
            rows,
            row_bytes: 64,
            columns: vec![
                ColumnMeta {
                    name: format!("{name}_key"),
                    ndv: rows,
                    min: 0,
                    max: rows as i64 - 1,
                    indexed: true,
                },
                ColumnMeta {
                    name: format!("{name}_attr"),
                    ndv: rows / 10 + 1,
                    min: 0,
                    max: 1000,
                    indexed: false,
                },
            ],
        });
        fact_cols.push(ColumnMeta {
            name: format!("{name}_fk"),
            ndv: rows,
            min: 0,
            max: rows as i64 - 1,
            indexed: false,
        });
    }
    cat.register(TableMeta {
        name: "fact".into(),
        rows: fact_rows,
        row_bytes: 8 * (dimensions as u64 + 1),
        columns: fact_cols,
    });
    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(TableMeta { name: "t".into(), rows: 10, row_bytes: 8, columns: vec![] });
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().rows, 10);
        assert!(c.table("missing").is_none());
    }

    #[test]
    fn column_selectivities() {
        let col = ColumnMeta { name: "a".into(), ndv: 100, min: 0, max: 999, indexed: false };
        assert!((col.eq_selectivity() - 0.01).abs() < 1e-12);
        assert!((col.lt_selectivity(500) - 0.5).abs() < 0.01);
        assert_eq!(col.lt_selectivity(-5), 0.0);
        assert_eq!(col.lt_selectivity(5000), 1.0);
        let empty = ColumnMeta { name: "e".into(), ndv: 0, min: 0, max: 0, indexed: false };
        assert_eq!(empty.eq_selectivity(), 0.0);
        assert_eq!(empty.lt_selectivity(0), 0.5);
    }

    #[test]
    fn star_catalog_shape() {
        let c = synthetic_star_catalog(100, 1_000_000);
        assert_eq!(c.len(), 101);
        let fact = c.table("fact").unwrap();
        assert_eq!(fact.rows, 1_000_000);
        assert_eq!(fact.columns.len(), 101);
        let d0 = c.table("dim0").unwrap();
        assert_eq!(d0.rows, 100);
        assert!(d0.column("dim0_key").unwrap().indexed);
        assert!(!d0.column("dim0_attr").unwrap().indexed);
        // Dimension sizes cycle.
        assert_eq!(c.table("dim1").unwrap().rows, 1000);
        assert_eq!(c.table("dim4").unwrap().rows, 100);
    }

    #[test]
    fn star_catalog_scales_to_ten_thousand() {
        let c = synthetic_star_catalog(10_000, 10_000_000);
        assert_eq!(c.len(), 10_001);
        assert!(c.table("dim9999").is_some());
    }

    #[test]
    fn table_size() {
        let t = TableMeta { name: "t".into(), rows: 100, row_bytes: 32, columns: vec![] };
        assert_eq!(t.size_bytes(), 3200);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Catalog::new()), "catalog(0 tables)");
    }
}
