//! The dual-objective cost model: every physical alternative is costed
//! in **time and energy**, the precondition for the paper's
//! energy-constrained optimization (Fig. 2).

use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::{ByteCount, Joules};
use std::fmt;
use std::ops::Add;
use std::time::Duration;

/// A plan alternative's predicted cost.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanCost {
    /// Predicted wall-clock time.
    pub time: Duration,
    /// Predicted energy.
    pub energy: Joules,
}

impl PlanCost {
    /// The zero cost.
    pub const ZERO: PlanCost = PlanCost { time: Duration::ZERO, energy: Joules::ZERO };

    /// Energy-delay product (lower is better).
    pub fn edp(&self) -> f64 {
        self.energy.joules() * self.time.as_secs_f64()
    }

    /// Weighted scalarization: `alpha` = 0 → pure time, 1 → pure energy.
    /// Units are normalized by the supplied references.
    pub fn scalarize(&self, alpha: f64, time_ref: Duration, energy_ref: Joules) -> f64 {
        let t = self.time.as_secs_f64() / time_ref.as_secs_f64().max(1e-12);
        let e = self.energy.joules() / energy_ref.joules().max(1e-12);
        (1.0 - alpha) * t + alpha * e
    }
}

impl Add for PlanCost {
    type Output = PlanCost;
    fn add(self, rhs: PlanCost) -> PlanCost {
        PlanCost { time: self.time + rhs.time, energy: self.energy + rhs.energy }
    }
}

impl fmt::Display for PlanCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms / {:.3} J", self.time.as_secs_f64() * 1e3, self.energy.joules())
    }
}

/// One side of an equi-join as the cost model sees it: surviving rows,
/// the **encoded** bytes of its key column, and the fraction of those
/// that zone pruning (filters + join key intersection) leaves live.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinSideCost {
    /// Rows surviving this side's filters.
    pub rows: u64,
    /// Encoded bytes of the join-key column (codes for strings).
    pub encoded_key_bytes: u64,
    /// Fraction of rows/bytes in segments surviving zone pruning.
    pub live_frac: f64,
    /// This side's key column is already physically sorted (declared
    /// sort key, no delta tail): sort-merge gets its sort passes free.
    pub sorted: bool,
}

impl JoinSideCost {
    fn live_rows(&self) -> u64 {
        (self.rows as f64 * self.live_frac.clamp(0.0, 1.0)).ceil() as u64
    }

    fn live_bytes(&self) -> u64 {
        (self.encoded_key_bytes as f64 * self.live_frac.clamp(0.0, 1.0)).ceil() as u64
    }
}

/// The physical join algorithm [`CostModel::join_compressed`] picks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Hash build + probe.
    Hash,
    /// Sort both key streams, merge.
    SortMerge,
}

/// A costed join plan: which side builds, which algorithm, and both
/// algorithm costs (so a caller optimizing for energy can re-choose).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinDecision {
    /// `true` if the left side is the (smaller) build side.
    pub build_left: bool,
    /// The time-optimal algorithm.
    pub algo: JoinAlgo,
    /// Predicted cost of the hash join.
    pub hash_cost: PlanCost,
    /// Predicted cost of the sort-merge join.
    pub merge_cost: PlanCost,
}

/// The model: a machine, kernel constants and a default execution
/// context.
#[derive(Clone, Debug)]
pub struct CostModel {
    estimator: CostEstimator,
    costs: KernelCosts,
    ctx: ExecutionContext,
}

impl CostModel {
    /// A model over `machine` using all its cores at the fastest
    /// P-state.
    pub fn new(machine: MachineSpec) -> Self {
        let ctx = ExecutionContext::parallel(machine.pstates().fastest(), machine.cores());
        CostModel { estimator: CostEstimator::new(machine), costs: KernelCosts::default_2013(), ctx }
    }

    /// Overrides the execution context (fewer cores / lower P-state —
    /// how the energy-cap scheduler reshapes plan costs).
    pub fn with_context(mut self, ctx: ExecutionContext) -> Self {
        self.ctx = ctx;
        self
    }

    /// Overrides the kernel constants (calibration).
    pub fn with_kernel_costs(mut self, costs: KernelCosts) -> Self {
        self.costs = costs;
        self
    }

    /// The machine this model costs against.
    pub fn machine(&self) -> &MachineSpec {
        self.estimator.machine()
    }

    /// The kernel constants in use.
    pub fn kernel_costs(&self) -> &KernelCosts {
        &self.costs
    }

    fn finish(&self, profile: ResourceProfile) -> PlanCost {
        let est = self.estimator.estimate(&profile, self.ctx);
        PlanCost { time: est.time, energy: est.energy }
    }

    /// Cost of a full scan over `rows` of `row_bytes` with a predicate
    /// of selectivity `sel`.
    pub fn scan(&self, rows: u64, row_bytes: u64, sel: f64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::SelectBitwise, rows)
            + self.costs.cycles_for(Kernel::Materialize, (sel * rows as f64) as u64);
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(rows * row_bytes)))
    }

    /// Cost of a scan over a **segmented, compressed** table: predicates
    /// run directly on encoded data, so DRAM traffic is the column's
    /// `encoded_bytes` rather than `rows * row_bytes`, and zone-map
    /// pruning leaves only `live_frac` of segments (rows *and* bytes) to
    /// touch. CPU cost stays per-row over the surviving rows (the
    /// bitwise scan kernel), plus materialization of the expected
    /// matches.
    pub fn scan_compressed(&self, rows: u64, encoded_bytes: u64, sel: f64, live_frac: f64) -> PlanCost {
        let live_frac = live_frac.clamp(0.0, 1.0);
        let live_rows = (rows as f64 * live_frac).ceil() as u64;
        let cycles = self.costs.cycles_for(Kernel::SelectBitwise, live_rows)
            + self.costs.cycles_for(Kernel::Materialize, (sel * rows as f64) as u64);
        let bytes = (encoded_bytes as f64 * live_frac).ceil() as u64;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of resolving a predicate on a **declared sort key** laid out
    /// as disjoint sorted segments: binary-search the segment list
    /// (`log segments` zone probes), binary-search the run boundaries
    /// inside the surviving segment (`2 log rows` value probes, ~one
    /// cache line each), then stream only the matching fraction of the
    /// encoded column. No index is touched and no non-matching row is
    /// read — the layout itself is the index.
    pub fn sorted_scan(&self, rows: u64, encoded_bytes: u64, sel: f64, segments: u64) -> PlanCost {
        let sel = sel.clamp(0.0, 1.0);
        let matches = (sel * rows as f64).ceil() as u64;
        let probes =
            (segments.max(2) as f64).log2().ceil() as u64 + 2 * (rows.max(2) as f64).log2().ceil() as u64;
        let cycles = self.costs.cycles_for(Kernel::IndexLookup, probes)
            + self.costs.cycles_for(Kernel::Materialize, matches);
        let bytes = probes * 64 + (sel * encoded_bytes as f64).ceil() as u64;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of resolving the same predicate through an index returning
    /// `matches` rows (tree descent per match batch + row fetches).
    pub fn index_lookup(&self, matches: u64, row_bytes: u64) -> PlanCost {
        let lookups = matches.max(1); // at least the probe that finds nothing
        let cycles = self.costs.cycles_for(Kernel::IndexLookup, lookups)
            + self.costs.cycles_for(Kernel::Materialize, matches);
        // Index probes are random accesses: each touches ~2 cache lines
        // of index plus the row itself.
        let bytes = lookups * 128 + matches * row_bytes;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of a hash join: build `build_rows`, probe `probe_rows`,
    /// emitting `out_rows`.
    pub fn hash_join(&self, build_rows: u64, probe_rows: u64, out_rows: u64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::HashBuild, build_rows)
            + self.costs.cycles_for(Kernel::HashProbe, probe_rows)
            + self.costs.cycles_for(Kernel::Materialize, out_rows);
        let bytes = (build_rows + probe_rows) * 8 + build_rows * 16 + out_rows * 16;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of aggregating `rows` into `groups` groups.
    pub fn aggregate(&self, rows: u64, groups: u64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::AggUpdate, rows)
            + if groups > 1 {
                self.costs.cycles_for(Kernel::HashProbe, rows)
            } else {
                haec_energy::Cycles::ZERO
            };
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(rows * 8)))
    }

    /// Cost of an aggregation pushed down onto a **segmented, compressed**
    /// table: values stream-decode straight out of the encoded column (no
    /// full-column materialization), so DRAM traffic is the column's
    /// `encoded_bytes` — scaled by the zone-survival fraction `live_frac`
    /// — and CPU adds a per-row decode on top of the aggregate update
    /// (plus the hash probe when grouping).
    ///
    /// Compare with decode-then-[`CostModel::aggregate`], which pays the
    /// full decode *and* re-reads the materialized plain column: pushdown
    /// is strictly cheaper for any compressible column.
    pub fn agg_pushdown(&self, rows: u64, encoded_bytes: u64, groups: u64, live_frac: f64) -> PlanCost {
        let live_frac = live_frac.clamp(0.0, 1.0);
        let live_rows = (rows as f64 * live_frac).ceil() as u64;
        let cycles = self.costs.cycles_for(Kernel::CompressDecode, live_rows)
            + self.costs.cycles_for(Kernel::AggUpdate, live_rows)
            + if groups > 1 {
                self.costs.cycles_for(Kernel::HashProbe, live_rows)
            } else {
                haec_energy::Cycles::ZERO
            };
        let bytes = (encoded_bytes as f64 * live_frac).ceil() as u64;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of an equi-join executed **on compressed segments**: keys
    /// stream out of the encoded columns (dictionary codes join
    /// code-to-code), so DRAM traffic per side is its `encoded_key_bytes`
    /// scaled by the fraction of segments surviving filters and the
    /// join-specific zone intersection
    /// ([`crate::access::join_zone_overlap`]). Picks the build side
    /// (fewer surviving rows) and costs both algorithms: hash
    /// (build + probe + bucket traffic) and sort-merge
    /// (`n log n` sort passes + a merge pass). `algo` is the time-optimal
    /// pick; callers with an energy goal can re-choose from the two
    /// costs.
    pub fn join_compressed(&self, left: &JoinSideCost, right: &JoinSideCost, out_rows: u64) -> JoinDecision {
        let build_left = left.live_rows() <= right.live_rows();
        let (build, probe) = if build_left { (left, right) } else { (right, left) };
        let (b, p) = (build.live_rows(), probe.live_rows());
        let stream_bytes = build.live_bytes() + probe.live_bytes();
        let hash_cost = self.finish(ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::HashBuild, b)
                + self.costs.cycles_for(Kernel::HashProbe, p)
                + self.costs.cycles_for(Kernel::Materialize, out_rows),
            // Encoded key streams, one bucket header per probe (16 B —
            // must track `haec_exec::join::HASH_BUCKET_BYTES`, which the
            // executor bills with; this crate cannot depend on exec),
            // and the row-id list entries of expected hits.
            dram_read: ByteCount::new(stream_bytes + p * 16 + out_rows * 4),
            // Build-table entries plus the output pairs vector.
            dram_written: ByteCount::new(b * 16 + out_rows * 8),
            ..ResourceProfile::default()
        });
        let n = b + p;
        // A declared-sort-key side arrives pre-sorted: its sort passes
        // cost nothing, only the unsorted side(s) pay `n log n`.
        let levels_of = |rows: u64| (rows.max(2) as f64).log2().ceil() as u64;
        let sort_items = (if build.sorted { 0 } else { b * levels_of(b) })
            + (if probe.sorted { 0 } else { p * levels_of(p) });
        let merge_cost = self.finish(ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::SortPerLevel, sort_items)
                + self.costs.cycles_for(Kernel::Materialize, out_rows),
            // Encoded key streams, sort passes over the extracted pairs
            // of each unsorted side, and the final merge pass over both
            // sorted runs.
            dram_read: ByteCount::new(stream_bytes + sort_items * 8 + n * 8),
            dram_written: ByteCount::new(n * 8 + out_rows * 8),
            ..ResourceProfile::default()
        });
        let algo = if hash_cost.time <= merge_cost.time { JoinAlgo::Hash } else { JoinAlgo::SortMerge };
        JoinDecision { build_left, algo, hash_cost, merge_cost }
    }

    /// Cost of delivering a string projection of `rows` result rows to
    /// the client as **codes + one shared output dictionary** (late
    /// materialization end to end): every row moves a 4-byte code, and
    /// each of the `distinct` values pays one dictionary-entry decode
    /// and intern of `avg_str_bytes` — string hashing is O(distinct),
    /// never O(rows).
    pub fn project_codes(&self, rows: u64, distinct: u64, avg_str_bytes: u64) -> PlanCost {
        let d = distinct.min(rows);
        let cycles =
            self.costs.cycles_for(Kernel::Materialize, rows) + self.costs.cycles_for(Kernel::HashBuild, d);
        self.finish(ResourceProfile {
            cpu_cycles: cycles,
            dram_read: ByteCount::new(rows * 4 + d * avg_str_bytes),
            dram_written: ByteCount::new(rows * 4 + d * avg_str_bytes),
            ..ResourceProfile::default()
        })
    }

    /// The decode-early alternative [`CostModel::project_codes`]
    /// replaces: every projected row decodes its string and re-hashes
    /// it into the output dictionary, so the per-value payload read and
    /// the hash both scale with `rows` instead of `distinct`. Strictly
    /// more expensive whenever values repeat (`distinct < rows`);
    /// identical when every row is distinct.
    pub fn project_decode(&self, rows: u64, distinct: u64, avg_str_bytes: u64) -> PlanCost {
        let cycles =
            self.costs.cycles_for(Kernel::Materialize, rows) + self.costs.cycles_for(Kernel::HashBuild, rows);
        self.finish(ResourceProfile {
            cpu_cycles: cycles,
            dram_read: ByteCount::new(rows * 4 + rows * avg_str_bytes),
            dram_written: ByteCount::new(rows * 4 + distinct.min(rows) * avg_str_bytes),
            ..ResourceProfile::default()
        })
    }

    /// Cost of (de)compressing `rows` values (used when shipping
    /// compressed — the codec halves of E3 at plan level).
    pub fn codec(&self, rows: u64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::CompressEncode, rows)
            + self.costs.cycles_for(Kernel::CompressDecode, rows);
        self.finish(ResourceProfile::cpu(cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(MachineSpec::commodity_2013())
    }

    #[test]
    fn scan_scales_linearly() {
        let m = model();
        let small = m.scan(1_000_000, 8, 0.01);
        let large = m.scan(10_000_000, 8, 0.01);
        let ratio = large.time.as_secs_f64() / small.time.as_secs_f64();
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
        assert!(large.energy.joules() > small.energy.joules());
    }

    #[test]
    fn index_beats_scan_at_low_selectivity_only() {
        // E1's core assertion at model level: point query → index wins
        // in time AND energy; 30% selectivity → scan wins.
        let m = model();
        let rows = 10_000_000u64;
        let point_scan = m.scan(rows, 8, 1e-7);
        let point_index = m.index_lookup(1, 8);
        assert!(point_index.time < point_scan.time);
        assert!(point_index.energy.joules() < point_scan.energy.joules());

        let broad_scan = m.scan(rows, 8, 0.3);
        let broad_index = m.index_lookup((rows as f64 * 0.3) as u64, 8);
        assert!(broad_scan.time < broad_index.time);
        assert!(broad_scan.energy.joules() < broad_index.energy.joules());
    }

    #[test]
    fn faster_is_cheaper_on_same_machine() {
        // The paper's §IV claim [12]: for the same work shape, the
        // faster plan is also the lower-energy plan (no idle-power
        // reallocation at plan level).
        let m = model();
        let a = m.scan(1_000_000, 8, 0.5);
        let b = m.scan(5_000_000, 8, 0.5);
        assert!(a.time < b.time);
        assert!(a.energy.joules() < b.energy.joules());
    }

    #[test]
    fn join_cost_monotone() {
        let m = model();
        let small = m.hash_join(1000, 10_000, 10_000);
        let large = m.hash_join(1000, 100_000, 100_000);
        assert!(small.time < large.time);
    }

    #[test]
    fn join_compressed_picks_small_build_side_and_prunes() {
        let m = model();
        let dim = JoinSideCost { rows: 10_000, encoded_key_bytes: 10_000 * 2, live_frac: 1.0, sorted: false };
        let fact = JoinSideCost {
            rows: 10_000_000,
            encoded_key_bytes: 10_000_000 * 2,
            live_frac: 1.0,
            sorted: false,
        };
        let d = m.join_compressed(&dim, &fact, 10_000_000);
        assert!(d.build_left, "the small dimension side must build");
        let flipped = m.join_compressed(&fact, &dim, 10_000_000);
        assert!(!flipped.build_left);
        assert_eq!(flipped.hash_cost, d.hash_cost, "build choice is side-symmetric");
        // The huge-probe hash join beats n·log n sort-merge here.
        assert_eq!(d.algo, JoinAlgo::Hash);
        assert!(d.hash_cost.time <= d.merge_cost.time);
        // Zone intersection scales the probe cost down on both axes.
        let pruned = JoinSideCost { live_frac: 0.125, ..fact };
        let p = m.join_compressed(&dim, &pruned, 1_250_000);
        assert!(p.hash_cost.time < d.hash_cost.time);
        assert!(p.hash_cost.energy.joules() < d.hash_cost.energy.joules());
    }

    #[test]
    fn join_compressed_beats_decode_then_join() {
        // The honest baseline: decode both 4x-compressed key columns to
        // flat Vec<i64> (decode cycles, encoded reads, plain writes),
        // then run the flat hash join. Streaming the encoded keys skips
        // the materialization round trip, so it must win on both
        // objectives — and tighter encodings must cost less.
        let m = model();
        let rows = 8_000_000u64;
        let encoded = rows * 2;
        let side = JoinSideCost { rows, encoded_key_bytes: encoded, live_frac: 1.0, sorted: false };
        let compressed = m.join_compressed(&side, &side, rows);
        let decode = m.finish(ResourceProfile {
            cpu_cycles: m.costs.cycles_for(Kernel::CompressDecode, rows * 2),
            dram_read: ByteCount::new(encoded * 2),
            dram_written: ByteCount::new(rows * 2 * 8),
            ..ResourceProfile::default()
        });
        let baseline = decode + m.hash_join(rows, rows, rows);
        assert!(compressed.hash_cost.time < baseline.time);
        assert!(compressed.hash_cost.energy.joules() < baseline.energy.joules());
        let loose = JoinSideCost { encoded_key_bytes: rows * 8, ..side };
        let l = m.join_compressed(&loose, &loose, rows);
        assert!(compressed.hash_cost.energy.joules() < l.hash_cost.energy.joules());
    }

    #[test]
    fn agg_pushdown_beats_decode_then_aggregate() {
        // Gather-and-fold = decode the whole column (full encoded read +
        // a plain-column write/re-read) then the flat aggregate. The
        // pushdown skips the materialization round-trip entirely, so it
        // must win on both objectives for a 4x-compressed column.
        let m = model();
        let rows = 10_000_000u64;
        let encoded = rows * 8 / 4;
        for groups in [1u64, 64] {
            let push = m.agg_pushdown(rows, encoded, groups, 1.0);
            let decode = m.finish(ResourceProfile {
                cpu_cycles: m.costs.cycles_for(Kernel::CompressDecode, rows),
                dram_read: ByteCount::new(encoded),
                dram_written: ByteCount::new(rows * 8),
                ..ResourceProfile::default()
            });
            let gather = decode + m.aggregate(rows, groups);
            assert!(push.time < gather.time, "groups={groups}");
            assert!(push.energy.joules() < gather.energy.joules(), "groups={groups}");
        }
        // Zone survival scales work down.
        let full = m.agg_pushdown(rows, encoded, 1, 1.0);
        let pruned = m.agg_pushdown(rows, encoded, 1, 0.25);
        assert!(pruned.time < full.time);
        assert!(pruned.energy.joules() < full.energy.joules());
        // Grouping costs extra.
        assert!(
            m.agg_pushdown(rows, encoded, 8, 1.0).energy.joules()
                > m.agg_pushdown(rows, encoded, 1, 1.0).energy.joules()
        );
    }

    #[test]
    fn project_codes_beats_decode_when_values_repeat() {
        let m = model();
        let rows = 1_000_000u64;
        for distinct in [10u64, 10_000] {
            let codes = m.project_codes(rows, distinct, 16);
            let decode = m.project_decode(rows, distinct, 16);
            assert!(codes.time < decode.time, "distinct={distinct}");
            assert!(codes.energy.joules() < decode.energy.joules(), "distinct={distinct}");
        }
        // All-distinct projections converge: nothing repeats, so there
        // is nothing for codes-to-client to save.
        let codes = m.project_codes(rows, rows, 16);
        let decode = m.project_decode(rows, rows, 16);
        assert!(codes.energy.joules() <= decode.energy.joules());
        // More distinct values cost more on the codes path (first-touch
        // decodes), and longer strings widen the gap.
        assert!(
            m.project_codes(rows, 10_000, 16).energy.joules() > m.project_codes(rows, 10, 16).energy.joules()
        );
        let short_gap =
            m.project_decode(rows, 10, 8).energy.joules() - m.project_codes(rows, 10, 8).energy.joules();
        let long_gap =
            m.project_decode(rows, 10, 64).energy.joules() - m.project_codes(rows, 10, 64).energy.joules();
        assert!(long_gap > short_gap);
    }

    #[test]
    fn plan_cost_arithmetic() {
        let a = PlanCost { time: Duration::from_millis(10), energy: Joules::new(1.0) };
        let b = PlanCost { time: Duration::from_millis(5), energy: Joules::new(0.5) };
        let c = a + b;
        assert_eq!(c.time, Duration::from_millis(15));
        assert!((c.energy.joules() - 1.5).abs() < 1e-12);
        assert!((a.edp() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn scalarize_interpolates() {
        let cost = PlanCost { time: Duration::from_secs(2), energy: Joules::new(10.0) };
        let tr = Duration::from_secs(1);
        let er = Joules::new(10.0);
        assert!((cost.scalarize(0.0, tr, er) - 2.0).abs() < 1e-9);
        assert!((cost.scalarize(1.0, tr, er) - 1.0).abs() < 1e-9);
        let mid = cost.scalarize(0.5, tr, er);
        assert!(mid > 1.0 && mid < 2.0);
    }

    #[test]
    fn context_slows_and_saves() {
        let machine = MachineSpec::commodity_2013();
        let fast_ctx = ExecutionContext::parallel(machine.pstates().fastest(), machine.cores());
        let slow_ctx = ExecutionContext::single(machine.pstates().slowest());
        let fast = CostModel::new(machine.clone()).with_context(fast_ctx);
        let slow = CostModel::new(machine).with_context(slow_ctx);
        // CPU-bound op: slow context takes longer but burns less CPU
        // dynamic energy... total energy includes DRAM static share so
        // only assert the time direction and energy-per-time drop.
        let f = fast.aggregate(50_000_000, 1);
        let s = slow.aggregate(50_000_000, 1);
        assert!(s.time > f.time);
    }

    #[test]
    fn display() {
        let c = PlanCost::ZERO;
        assert!(format!("{c}").contains("ms"));
    }
}
