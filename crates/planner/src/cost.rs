//! The dual-objective cost model: every physical alternative is costed
//! in **time and energy**, the precondition for the paper's
//! energy-constrained optimization (Fig. 2).

use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::{ByteCount, Joules};
use std::fmt;
use std::ops::Add;
use std::time::Duration;

/// A plan alternative's predicted cost.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanCost {
    /// Predicted wall-clock time.
    pub time: Duration,
    /// Predicted energy.
    pub energy: Joules,
}

impl PlanCost {
    /// The zero cost.
    pub const ZERO: PlanCost = PlanCost { time: Duration::ZERO, energy: Joules::ZERO };

    /// Energy-delay product (lower is better).
    pub fn edp(&self) -> f64 {
        self.energy.joules() * self.time.as_secs_f64()
    }

    /// Weighted scalarization: `alpha` = 0 → pure time, 1 → pure energy.
    /// Units are normalized by the supplied references.
    pub fn scalarize(&self, alpha: f64, time_ref: Duration, energy_ref: Joules) -> f64 {
        let t = self.time.as_secs_f64() / time_ref.as_secs_f64().max(1e-12);
        let e = self.energy.joules() / energy_ref.joules().max(1e-12);
        (1.0 - alpha) * t + alpha * e
    }
}

impl Add for PlanCost {
    type Output = PlanCost;
    fn add(self, rhs: PlanCost) -> PlanCost {
        PlanCost { time: self.time + rhs.time, energy: self.energy + rhs.energy }
    }
}

impl fmt::Display for PlanCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms / {:.3} J", self.time.as_secs_f64() * 1e3, self.energy.joules())
    }
}

/// The model: a machine, kernel constants and a default execution
/// context.
#[derive(Clone, Debug)]
pub struct CostModel {
    estimator: CostEstimator,
    costs: KernelCosts,
    ctx: ExecutionContext,
}

impl CostModel {
    /// A model over `machine` using all its cores at the fastest
    /// P-state.
    pub fn new(machine: MachineSpec) -> Self {
        let ctx = ExecutionContext::parallel(machine.pstates().fastest(), machine.cores());
        CostModel { estimator: CostEstimator::new(machine), costs: KernelCosts::default_2013(), ctx }
    }

    /// Overrides the execution context (fewer cores / lower P-state —
    /// how the energy-cap scheduler reshapes plan costs).
    pub fn with_context(mut self, ctx: ExecutionContext) -> Self {
        self.ctx = ctx;
        self
    }

    /// Overrides the kernel constants (calibration).
    pub fn with_kernel_costs(mut self, costs: KernelCosts) -> Self {
        self.costs = costs;
        self
    }

    /// The machine this model costs against.
    pub fn machine(&self) -> &MachineSpec {
        self.estimator.machine()
    }

    /// The kernel constants in use.
    pub fn kernel_costs(&self) -> &KernelCosts {
        &self.costs
    }

    fn finish(&self, profile: ResourceProfile) -> PlanCost {
        let est = self.estimator.estimate(&profile, self.ctx);
        PlanCost { time: est.time, energy: est.energy }
    }

    /// Cost of a full scan over `rows` of `row_bytes` with a predicate
    /// of selectivity `sel`.
    pub fn scan(&self, rows: u64, row_bytes: u64, sel: f64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::SelectBitwise, rows)
            + self.costs.cycles_for(Kernel::Materialize, (sel * rows as f64) as u64);
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(rows * row_bytes)))
    }

    /// Cost of a scan over a **segmented, compressed** table: predicates
    /// run directly on encoded data, so DRAM traffic is the column's
    /// `encoded_bytes` rather than `rows * row_bytes`, and zone-map
    /// pruning leaves only `live_frac` of segments (rows *and* bytes) to
    /// touch. CPU cost stays per-row over the surviving rows (the
    /// bitwise scan kernel), plus materialization of the expected
    /// matches.
    pub fn scan_compressed(&self, rows: u64, encoded_bytes: u64, sel: f64, live_frac: f64) -> PlanCost {
        let live_frac = live_frac.clamp(0.0, 1.0);
        let live_rows = (rows as f64 * live_frac).ceil() as u64;
        let cycles = self.costs.cycles_for(Kernel::SelectBitwise, live_rows)
            + self.costs.cycles_for(Kernel::Materialize, (sel * rows as f64) as u64);
        let bytes = (encoded_bytes as f64 * live_frac).ceil() as u64;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of resolving the same predicate through an index returning
    /// `matches` rows (tree descent per match batch + row fetches).
    pub fn index_lookup(&self, matches: u64, row_bytes: u64) -> PlanCost {
        let lookups = matches.max(1); // at least the probe that finds nothing
        let cycles = self.costs.cycles_for(Kernel::IndexLookup, lookups)
            + self.costs.cycles_for(Kernel::Materialize, matches);
        // Index probes are random accesses: each touches ~2 cache lines
        // of index plus the row itself.
        let bytes = lookups * 128 + matches * row_bytes;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of a hash join: build `build_rows`, probe `probe_rows`,
    /// emitting `out_rows`.
    pub fn hash_join(&self, build_rows: u64, probe_rows: u64, out_rows: u64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::HashBuild, build_rows)
            + self.costs.cycles_for(Kernel::HashProbe, probe_rows)
            + self.costs.cycles_for(Kernel::Materialize, out_rows);
        let bytes = (build_rows + probe_rows) * 8 + build_rows * 16 + out_rows * 16;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of aggregating `rows` into `groups` groups.
    pub fn aggregate(&self, rows: u64, groups: u64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::AggUpdate, rows)
            + if groups > 1 {
                self.costs.cycles_for(Kernel::HashProbe, rows)
            } else {
                haec_energy::Cycles::ZERO
            };
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(rows * 8)))
    }

    /// Cost of an aggregation pushed down onto a **segmented, compressed**
    /// table: values stream-decode straight out of the encoded column (no
    /// full-column materialization), so DRAM traffic is the column's
    /// `encoded_bytes` — scaled by the zone-survival fraction `live_frac`
    /// — and CPU adds a per-row decode on top of the aggregate update
    /// (plus the hash probe when grouping).
    ///
    /// Compare with decode-then-[`CostModel::aggregate`], which pays the
    /// full decode *and* re-reads the materialized plain column: pushdown
    /// is strictly cheaper for any compressible column.
    pub fn agg_pushdown(&self, rows: u64, encoded_bytes: u64, groups: u64, live_frac: f64) -> PlanCost {
        let live_frac = live_frac.clamp(0.0, 1.0);
        let live_rows = (rows as f64 * live_frac).ceil() as u64;
        let cycles = self.costs.cycles_for(Kernel::CompressDecode, live_rows)
            + self.costs.cycles_for(Kernel::AggUpdate, live_rows)
            + if groups > 1 {
                self.costs.cycles_for(Kernel::HashProbe, live_rows)
            } else {
                haec_energy::Cycles::ZERO
            };
        let bytes = (encoded_bytes as f64 * live_frac).ceil() as u64;
        self.finish(ResourceProfile::scan(cycles, ByteCount::new(bytes)))
    }

    /// Cost of (de)compressing `rows` values (used when shipping
    /// compressed — the codec halves of E3 at plan level).
    pub fn codec(&self, rows: u64) -> PlanCost {
        let cycles = self.costs.cycles_for(Kernel::CompressEncode, rows)
            + self.costs.cycles_for(Kernel::CompressDecode, rows);
        self.finish(ResourceProfile::cpu(cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(MachineSpec::commodity_2013())
    }

    #[test]
    fn scan_scales_linearly() {
        let m = model();
        let small = m.scan(1_000_000, 8, 0.01);
        let large = m.scan(10_000_000, 8, 0.01);
        let ratio = large.time.as_secs_f64() / small.time.as_secs_f64();
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
        assert!(large.energy.joules() > small.energy.joules());
    }

    #[test]
    fn index_beats_scan_at_low_selectivity_only() {
        // E1's core assertion at model level: point query → index wins
        // in time AND energy; 30% selectivity → scan wins.
        let m = model();
        let rows = 10_000_000u64;
        let point_scan = m.scan(rows, 8, 1e-7);
        let point_index = m.index_lookup(1, 8);
        assert!(point_index.time < point_scan.time);
        assert!(point_index.energy.joules() < point_scan.energy.joules());

        let broad_scan = m.scan(rows, 8, 0.3);
        let broad_index = m.index_lookup((rows as f64 * 0.3) as u64, 8);
        assert!(broad_scan.time < broad_index.time);
        assert!(broad_scan.energy.joules() < broad_index.energy.joules());
    }

    #[test]
    fn faster_is_cheaper_on_same_machine() {
        // The paper's §IV claim [12]: for the same work shape, the
        // faster plan is also the lower-energy plan (no idle-power
        // reallocation at plan level).
        let m = model();
        let a = m.scan(1_000_000, 8, 0.5);
        let b = m.scan(5_000_000, 8, 0.5);
        assert!(a.time < b.time);
        assert!(a.energy.joules() < b.energy.joules());
    }

    #[test]
    fn join_cost_monotone() {
        let m = model();
        let small = m.hash_join(1000, 10_000, 10_000);
        let large = m.hash_join(1000, 100_000, 100_000);
        assert!(small.time < large.time);
    }

    #[test]
    fn agg_pushdown_beats_decode_then_aggregate() {
        // Gather-and-fold = decode the whole column (full encoded read +
        // a plain-column write/re-read) then the flat aggregate. The
        // pushdown skips the materialization round-trip entirely, so it
        // must win on both objectives for a 4x-compressed column.
        let m = model();
        let rows = 10_000_000u64;
        let encoded = rows * 8 / 4;
        for groups in [1u64, 64] {
            let push = m.agg_pushdown(rows, encoded, groups, 1.0);
            let decode = m.finish(ResourceProfile {
                cpu_cycles: m.costs.cycles_for(Kernel::CompressDecode, rows),
                dram_read: ByteCount::new(encoded),
                dram_written: ByteCount::new(rows * 8),
                ..ResourceProfile::default()
            });
            let gather = decode + m.aggregate(rows, groups);
            assert!(push.time < gather.time, "groups={groups}");
            assert!(push.energy.joules() < gather.energy.joules(), "groups={groups}");
        }
        // Zone survival scales work down.
        let full = m.agg_pushdown(rows, encoded, 1, 1.0);
        let pruned = m.agg_pushdown(rows, encoded, 1, 0.25);
        assert!(pruned.time < full.time);
        assert!(pruned.energy.joules() < full.energy.joules());
        // Grouping costs extra.
        assert!(
            m.agg_pushdown(rows, encoded, 8, 1.0).energy.joules()
                > m.agg_pushdown(rows, encoded, 1, 1.0).energy.joules()
        );
    }

    #[test]
    fn plan_cost_arithmetic() {
        let a = PlanCost { time: Duration::from_millis(10), energy: Joules::new(1.0) };
        let b = PlanCost { time: Duration::from_millis(5), energy: Joules::new(0.5) };
        let c = a + b;
        assert_eq!(c.time, Duration::from_millis(15));
        assert!((c.energy.joules() - 1.5).abs() < 1e-12);
        assert!((a.edp() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn scalarize_interpolates() {
        let cost = PlanCost { time: Duration::from_secs(2), energy: Joules::new(10.0) };
        let tr = Duration::from_secs(1);
        let er = Joules::new(10.0);
        assert!((cost.scalarize(0.0, tr, er) - 2.0).abs() < 1e-9);
        assert!((cost.scalarize(1.0, tr, er) - 1.0).abs() < 1e-9);
        let mid = cost.scalarize(0.5, tr, er);
        assert!(mid > 1.0 && mid < 2.0);
    }

    #[test]
    fn context_slows_and_saves() {
        let machine = MachineSpec::commodity_2013();
        let fast_ctx = ExecutionContext::parallel(machine.pstates().fastest(), machine.cores());
        let slow_ctx = ExecutionContext::single(machine.pstates().slowest());
        let fast = CostModel::new(machine.clone()).with_context(fast_ctx);
        let slow = CostModel::new(machine).with_context(slow_ctx);
        // CPU-bound op: slow context takes longer but burns less CPU
        // dynamic energy... total energy includes DRAM static share so
        // only assert the time direction and energy-per-time drop.
        let f = fast.aggregate(50_000_000, 1);
        let s = slow.aggregate(50_000_000, 1);
        assert!(s.time > f.time);
    }

    #[test]
    fn display() {
        let c = PlanCost::ZERO;
        assert!(format!("{c}").contains("ms"));
    }
}
