//! # haec-planner
//!
//! Dual-objective (time, energy) query optimization — the compile-time
//! half of the `haecdb` reproduction of *Lehner, "Energy-Efficient
//! In-Memory Database Computing" (DATE 2013)*.
//!
//! * [`catalog`] — table/column statistics, incl. a 10 000-table
//!   synthetic catalog generator (§II's ERP scenario).
//! * [`cost`] — every alternative costed in time **and** energy.
//! * [`access`] — index-vs-scan selection (experiment E1, ref \[12\]).
//! * [`join_order`] — exhaustive DP vs greedy vs left-deep ordering at
//!   catalog scale (experiment E8).
//! * [`placement`] — CPU vs co-processor placement with init/work/finish
//!   phase splitting (experiment E6, refs \[9\]\[16\]).
//! * [`optimizer`] — Fig. 2's decision rule: fastest plan under an
//!   energy budget / cheapest plan under a deadline, plus Pareto
//!   frontiers.
//!
//! ## Example
//!
//! ```
//! use haec_planner::prelude::*;
//! use haec_energy::units::Joules;
//! use std::time::Duration;
//!
//! let plans = vec![
//!     PlanCost { time: Duration::from_millis(10), energy: Joules::new(50.0) },
//!     PlanCost { time: Duration::from_millis(80), energy: Joules::new(8.0) },
//! ];
//! // Unconstrained: take the fast plan. Under a 20 J cap: the frugal one.
//! assert_eq!(choose(&plans, Goal::MinTime).unwrap(), 0);
//! assert_eq!(choose(&plans, Goal::MinTimeUnderEnergyBudget(Joules::new(20.0))).unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod catalog;
pub mod cost;
pub mod join_order;
pub mod optimizer;
pub mod placement;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::access::{choose_access, estimate_selectivity, AccessDecision, AccessPath};
    pub use crate::catalog::{synthetic_star_catalog, Catalog, ColumnMeta, TableMeta};
    pub use crate::cost::{CostModel, PlanCost};
    pub use crate::join_order::{
        plan_dp, plan_greedy, plan_left_deep, JoinGraph, PlanSummary, DP_MAX_RELATIONS,
    };
    pub use crate::optimizer::{choose, pareto_frontier, ChooseError, Goal};
    pub use crate::placement::{choose_placement, PhasedOperator, Placement, PlacementDecision};
}

pub use access::{choose_access, AccessPath};
pub use catalog::{Catalog, TableMeta};
pub use cost::{CostModel, PlanCost};
pub use join_order::JoinGraph;
pub use optimizer::{choose, Goal};
pub use placement::{choose_placement, Placement};
