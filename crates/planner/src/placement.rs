//! Hybrid operator placement: CPU vs co-processor, per phase.
//!
//! The paper (§IV.B): "while init()- and finish()-phases of operators
//! may run on a CPU side, the actual work()-part of an operator may be
//! scheduled on a GPU platform". This module enumerates the placement
//! alternatives for a phased operator and costs them against a
//! [`CoprocSpec`] — experiment E6 sweeps data size and link bandwidth to
//! find where offloading pays.

use crate::cost::PlanCost;
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::{CoprocSpec, MachineSpec};
use haec_energy::pstate::CState;
use haec_energy::units::{Joules, Watts};
use std::fmt;
use std::time::Duration;

/// Where the operator's phases run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// All phases on the CPU.
    CpuOnly,
    /// init/finish on CPU, work() offloaded (the paper's hybrid).
    HybridOffload,
}

impl Placement {
    /// Both alternatives.
    pub const ALL: [Placement; 2] = [Placement::CpuOnly, Placement::HybridOffload];
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::CpuOnly => f.write_str("cpu-only"),
            Placement::HybridOffload => f.write_str("hybrid-offload"),
        }
    }
}

/// A phased operator's workload description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhasedOperator {
    /// Items touched by init() (setup, partitioning) — always CPU.
    pub init_items: u64,
    /// Items processed by work() — offloadable.
    pub work_items: u64,
    /// Items touched by finish() (merge, result assembly) — always CPU.
    pub finish_items: u64,
    /// Bytes that must cross to the device if work() is offloaded.
    pub transfer_bytes: u64,
    /// CPU cost of one work() item in cycles — what separates memory-
    /// bound scans (a few cycles, offload never pays once transfer is
    /// counted) from compute-intensive operators like frequent-itemset
    /// mining (paper ref \[8\]), where the device wins.
    pub cpu_cycles_per_item: f64,
}

impl PhasedOperator {
    /// A scan+aggregate over `rows` 8-byte values: trivial init, ~4
    /// cycles per row, small finish. Memory-bound: the experiment shows
    /// offload does NOT pay here once PCIe transfer is charged.
    pub fn scan_aggregate(rows: u64) -> Self {
        PhasedOperator {
            init_items: 1024,
            work_items: rows,
            finish_items: 1024,
            transfer_bytes: rows * 8,
            cpu_cycles_per_item: 4.0,
        }
    }

    /// A compute-intensive kernel (pattern matching / itemset mining,
    /// paper ref \[8\]): ~80 CPU cycles per item, same transfer volume.
    pub fn complex_kernel(rows: u64) -> Self {
        PhasedOperator {
            init_items: 1024,
            work_items: rows,
            finish_items: 1024,
            transfer_bytes: rows * 8,
            cpu_cycles_per_item: 80.0,
        }
    }
}

/// The placement decision with both alternatives costed.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementDecision {
    /// The chosen placement (by time).
    pub placement: Placement,
    /// Cost with everything on the CPU.
    pub cpu_cost: PlanCost,
    /// Cost with work() offloaded (`None` if the machine has no
    /// co-processor).
    pub hybrid_cost: Option<PlanCost>,
}

impl PlacementDecision {
    /// The chosen alternative's cost.
    pub fn chosen_cost(&self) -> PlanCost {
        match self.placement {
            Placement::CpuOnly => self.cpu_cost,
            Placement::HybridOffload => self.hybrid_cost.expect("hybrid choice implies coproc"),
        }
    }
}

fn cpu_cycles_cost(machine: &MachineSpec, cycles: f64) -> PlanCost {
    let table = machine.pstates();
    let ps = table.fastest();
    let cores = machine.cores() as f64;
    let time = cycles / (table.state(ps).frequency().hertz() * cores);
    let power = table.core_power(ps, CState::Active) * cores;
    PlanCost { time: Duration::from_secs_f64(time), energy: power * Duration::from_secs_f64(time) }
}

fn cpu_phase_cost(machine: &MachineSpec, costs: &KernelCosts, items: u64, kernel: Kernel) -> PlanCost {
    cpu_cycles_cost(machine, costs.cycles_for(kernel, items).count() as f64)
}

/// Costs and chooses the placement of `op` on `machine` (with
/// `machine.coproc()` as the candidate device).
pub fn choose_placement(
    machine: &MachineSpec,
    costs: &KernelCosts,
    op: &PhasedOperator,
) -> PlacementDecision {
    let init = cpu_phase_cost(machine, costs, op.init_items, Kernel::Materialize);
    let finish = cpu_phase_cost(machine, costs, op.finish_items, Kernel::Materialize);
    let cpu_work = cpu_cycles_cost(machine, op.work_items as f64 * op.cpu_cycles_per_item);
    let cpu_cost = init + cpu_work + finish;

    let hybrid_cost = machine.coproc().map(|c| coproc_work_cost(c, op) + init + finish);
    let placement = match &hybrid_cost {
        Some(h) if h.time < cpu_cost.time => Placement::HybridOffload,
        _ => Placement::CpuOnly,
    };
    PlacementDecision { placement, cpu_cost, hybrid_cost }
}

fn coproc_work_cost(c: &CoprocSpec, op: &PhasedOperator) -> PlanCost {
    let xfer = op.transfer_bytes as f64 / c.link_bandwidth;
    let work = op.work_items as f64 / c.items_per_sec;
    let time = c.launch_latency_s + xfer + work;
    let busy = Watts::new(c.busy_w - c.idle_w) * Duration::from_secs_f64(c.launch_latency_s + work);
    let link = Joules::new(op.transfer_bytes as f64 * c.link_pj_per_byte * 1e-12);
    PlanCost { time: Duration::from_secs_f64(time), energy: busy + link }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_machine() -> MachineSpec {
        MachineSpec::commodity_2013().with_coproc(CoprocSpec::kepler_gpu())
    }

    fn costs() -> KernelCosts {
        KernelCosts::default_2013()
    }

    #[test]
    fn no_coproc_means_cpu_only() {
        let m = MachineSpec::commodity_2013();
        let d = choose_placement(&m, &costs(), &PhasedOperator::scan_aggregate(100_000_000));
        assert_eq!(d.placement, Placement::CpuOnly);
        assert!(d.hybrid_cost.is_none());
        assert_eq!(d.chosen_cost(), d.cpu_cost);
    }

    #[test]
    fn tiny_work_stays_on_cpu() {
        // Launch latency + transfer dominate small inputs.
        let d = choose_placement(&gpu_machine(), &costs(), &PhasedOperator::complex_kernel(10_000));
        assert_eq!(d.placement, Placement::CpuOnly);
        let h = d.hybrid_cost.unwrap();
        assert!(h.time > d.cpu_cost.time);
    }

    #[test]
    fn memory_bound_scan_never_offloads() {
        // The known 2013 result: a plain scan is cheaper on the CPU than
        // shipping the data over PCIe, at any size.
        let m = gpu_machine();
        let k = costs();
        for rows in [10_000u64, 10_000_000, 2_000_000_000] {
            let d = choose_placement(&m, &k, &PhasedOperator::scan_aggregate(rows));
            assert_eq!(d.placement, Placement::CpuOnly, "at {rows} rows");
        }
    }

    #[test]
    fn huge_complex_work_offloads() {
        let d = choose_placement(&gpu_machine(), &costs(), &PhasedOperator::complex_kernel(2_000_000_000));
        assert_eq!(
            d.placement,
            Placement::HybridOffload,
            "cpu {} vs hybrid {}",
            d.cpu_cost,
            d.hybrid_cost.unwrap()
        );
    }

    #[test]
    fn crossover_monotone_in_size() {
        // Once offload wins it keeps winning as size grows.
        let m = gpu_machine();
        let k = costs();
        let mut offloaded = false;
        for rows in [1_000u64, 100_000, 10_000_000, 500_000_000, 5_000_000_000] {
            let d = choose_placement(&m, &k, &PhasedOperator::complex_kernel(rows));
            if offloaded {
                assert_eq!(d.placement, Placement::HybridOffload, "regressed at {rows}");
            }
            offloaded = d.placement == Placement::HybridOffload;
        }
        assert!(offloaded, "offload never won");
    }

    #[test]
    fn slow_link_blocks_offload() {
        let mut gpu = CoprocSpec::kepler_gpu();
        gpu.link_bandwidth = 50.0e6; // 50 MB/s: hopeless
        let m = MachineSpec::commodity_2013().with_coproc(gpu);
        let d = choose_placement(&m, &costs(), &PhasedOperator::scan_aggregate(2_000_000_000));
        assert_eq!(d.placement, Placement::CpuOnly);
    }

    #[test]
    fn phases_always_charged() {
        // Hybrid still pays init+finish on the CPU: a pure-phase op
        // (no work) costs the same either way.
        let m = gpu_machine();
        let op = PhasedOperator {
            init_items: 1_000_000,
            work_items: 0,
            finish_items: 1_000_000,
            transfer_bytes: 0,
            cpu_cycles_per_item: 4.0,
        };
        let d = choose_placement(&m, &costs(), &op);
        let h = d.hybrid_cost.unwrap();
        // Hybrid adds only launch overhead-free zero work; times equal
        // up to the zero-work device time.
        assert!((h.time.as_secs_f64() - d.cpu_cost.time.as_secs_f64()).abs() < 1e-3);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Placement::HybridOffload), "hybrid-offload");
    }
}
