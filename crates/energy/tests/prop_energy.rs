//! Property-based tests for the energy model invariants.

use haec_energy::meter::{rapl_delta, rapl_units_to_joules, RAPL_WRAP_UNITS};
use haec_energy::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    /// RAPL delta reconstruction: for any starting register value and any
    /// true consumption below one wrap, reading before/after and applying
    /// `rapl_delta` recovers the consumption exactly.
    #[test]
    fn rapl_delta_recovers_consumption(start in 0u64..RAPL_WRAP_UNITS, used in 0u64..RAPL_WRAP_UNITS) {
        let after = (start + used) % RAPL_WRAP_UNITS;
        prop_assert_eq!(rapl_delta(start, after), used);
    }

    /// Meter monotonicity: adding non-negative energy never decreases any
    /// domain total, and package always equals cores + dram.
    #[test]
    fn meter_package_invariant(adds in proptest::collection::vec((0usize..6, 0.0f64..1e6), 0..50)) {
        let mut m = EnergyMeter::new();
        for (d, j) in adds {
            let domain = Domain::ALL[d];
            if domain == Domain::Package { continue; }
            m.add(domain, Joules::new(j));
        }
        let pkg = m.total(Domain::Package).joules();
        let cores_dram = m.total(Domain::Cores).joules() + m.total(Domain::Dram).joules();
        prop_assert!((pkg - cores_dram).abs() <= 1e-6 * pkg.max(1.0));
        // Grand total ≥ every leaf domain.
        for d in Domain::ALL {
            if d != Domain::Package {
                prop_assert!(m.grand_total().joules() + 1e-9 >= m.total(d).joules());
            }
        }
    }

    /// Costing is monotone in work: more cycles never takes less time or
    /// energy at a fixed context.
    #[test]
    fn cost_monotone_in_cycles(c1 in 0u64..10_000_000_000, c2 in 0u64..10_000_000_000) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let est = CostEstimator::new(MachineSpec::commodity_2013());
        let ctx = ExecutionContext::single(est.machine().pstates().fastest());
        let a = est.estimate(&ResourceProfile::cpu(Cycles::new(lo)), ctx);
        let b = est.estimate(&ResourceProfile::cpu(Cycles::new(hi)), ctx);
        prop_assert!(a.time <= b.time);
        prop_assert!(a.energy.joules() <= b.energy.joules() + 1e-12);
    }

    /// Parallelism never makes pure-CPU work slower, and never cheaper in
    /// core-energy terms (same cycles, same per-cycle energy).
    #[test]
    fn parallel_speedup_sane(cycles in 1u64..1_000_000_000, cores in 1usize..8) {
        let est = CostEstimator::new(MachineSpec::commodity_2013());
        let ps = est.machine().pstates().fastest();
        let p = ResourceProfile::cpu(Cycles::new(cycles));
        let seq = est.estimate(&p, ExecutionContext::single(ps));
        let par = est.estimate(&p, ExecutionContext::parallel(ps, cores));
        prop_assert!(par.time <= seq.time + Duration::from_nanos(1));
    }

    /// Unit arithmetic: (a+b)-b ≈ a for joules.
    #[test]
    fn joules_add_sub_roundtrip(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let r = (Joules::new(a) + Joules::new(b)) - Joules::new(b);
        prop_assert!((r.joules() - a).abs() <= 1e-3 * a.abs().max(1.0));
    }

    /// rapl unit conversion is linear.
    #[test]
    fn rapl_units_linear(u in 0u64..u32::MAX as u64) {
        let j = rapl_units_to_joules(u).joules();
        let j2 = rapl_units_to_joules(2 * u).joules();
        prop_assert!((j2 - 2.0 * j).abs() < 1e-9);
    }

    /// Branching-selection cost is symmetric in selectivity and peaks at 0.5.
    #[test]
    fn branching_cost_symmetric(sel in 0.0f64..=0.5) {
        let costs = KernelCosts::default_2013();
        let a = costs.branching_cycles(100_000, sel).count();
        let b = costs.branching_cycles(100_000, 1.0 - sel).count();
        let mid = costs.branching_cycles(100_000, 0.5).count();
        prop_assert_eq!(a, b);
        prop_assert!(mid >= a);
    }

    /// Sequential/parallel composition laws: `then` times add; `alongside`
    /// takes the max; both add energy.
    #[test]
    fn composition_laws(t1 in 0u64..1_000_000, t2 in 0u64..1_000_000, e1 in 0.0f64..1e3, e2 in 0.0f64..1e3) {
        let a = CostEstimate { time: Duration::from_micros(t1), energy: Joules::new(e1), breakdown: Default::default() };
        let b = CostEstimate { time: Duration::from_micros(t2), energy: Joules::new(e2), breakdown: Default::default() };
        let seq = a.then(&b);
        let par = a.alongside(&b);
        prop_assert_eq!(seq.time, a.time + b.time);
        prop_assert_eq!(par.time, a.time.max(b.time));
        prop_assert!((seq.energy.joules() - (e1 + e2)).abs() < 1e-9);
        prop_assert!((par.energy.joules() - (e1 + e2)).abs() < 1e-9);
    }
}
