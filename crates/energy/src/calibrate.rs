//! Per-operation cost constants and host calibration.
//!
//! The executor does its work for real (it actually scans, hashes and
//! aggregates), but energy is attributed analytically. The bridge between
//! the two worlds is a table of *cycles-per-item* constants for each
//! kernel class. Defaults are taken from the main-memory query processing
//! literature contemporary with the paper (Ross TODS'04 for selection
//! kernels; Tsirogiannis et al. SIGMOD'10 for scan/aggregate energy
//! shape); [`calibrate_host`] optionally rescales them to the actual host
//! so that real measured runtimes and model times stay in the same ballpark.

use crate::units::Cycles;
use std::time::Instant;

/// Kernel classes whose per-item CPU cost the model tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kernel {
    /// Branching (if-based) selection; cost is selectivity-dependent at
    /// run time, this constant is the well-predicted baseline.
    SelectBranching,
    /// Branch-free (predicated) selection.
    SelectPredicated,
    /// Bitwise 64-lane selection (SIMD stand-in).
    SelectBitwise,
    /// Per-item aggregation update (sum/min/max).
    AggUpdate,
    /// Hash-table build insert.
    HashBuild,
    /// Hash-table probe.
    HashProbe,
    /// Sort, per item per merge level.
    SortPerLevel,
    /// Lightweight compression encode, per item.
    CompressEncode,
    /// Lightweight compression decode, per item.
    CompressDecode,
    /// Index (tree/hash) point lookup, per lookup.
    IndexLookup,
    /// Tuple materialization / copy, per item.
    Materialize,
}

/// A table of cycles-per-item constants for every [`Kernel`].
///
/// ```
/// use haec_energy::calibrate::{Kernel, KernelCosts};
/// let costs = KernelCosts::default_2013();
/// assert!(costs.cycles_per_item(Kernel::SelectBitwise).count()
///     < costs.cycles_per_item(Kernel::SelectPredicated).count());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct KernelCosts {
    select_branching: f64,
    select_predicated: f64,
    select_bitwise: f64,
    agg_update: f64,
    hash_build: f64,
    hash_probe: f64,
    sort_per_level: f64,
    compress_encode: f64,
    compress_decode: f64,
    index_lookup: f64,
    materialize: f64,
    /// Extra cycles charged per *mispredicted branch* in branching
    /// selection (≈ pipeline depth of the era's cores).
    pub branch_miss_penalty: f64,
    /// Global scale factor applied by host calibration.
    scale: f64,
}

impl KernelCosts {
    /// Literature-derived defaults for a 2013 out-of-order core.
    pub fn default_2013() -> Self {
        KernelCosts {
            select_branching: 3.0,
            select_predicated: 5.0,
            select_bitwise: 1.2,
            agg_update: 4.0,
            hash_build: 45.0,
            hash_probe: 35.0,
            sort_per_level: 12.0,
            compress_encode: 6.0,
            compress_decode: 3.0,
            index_lookup: 120.0,
            materialize: 8.0,
            branch_miss_penalty: 15.0,
            scale: 1.0,
        }
    }

    /// Raw (possibly fractional) cycles per item for `kernel`, after
    /// scaling.
    pub fn raw(&self, kernel: Kernel) -> f64 {
        let base = match kernel {
            Kernel::SelectBranching => self.select_branching,
            Kernel::SelectPredicated => self.select_predicated,
            Kernel::SelectBitwise => self.select_bitwise,
            Kernel::AggUpdate => self.agg_update,
            Kernel::HashBuild => self.hash_build,
            Kernel::HashProbe => self.hash_probe,
            Kernel::SortPerLevel => self.sort_per_level,
            Kernel::CompressEncode => self.compress_encode,
            Kernel::CompressDecode => self.compress_decode,
            Kernel::IndexLookup => self.index_lookup,
            Kernel::Materialize => self.materialize,
        };
        base * self.scale
    }

    /// Cycles per item, rounded up to whole cycles.
    pub fn cycles_per_item(&self, kernel: Kernel) -> Cycles {
        Cycles::new(self.raw(kernel).ceil() as u64)
    }

    /// Total cycles for `items` items of `kernel` (fractional constants
    /// accumulate before rounding, so large counts stay accurate).
    pub fn cycles_for(&self, kernel: Kernel, items: u64) -> Cycles {
        Cycles::new((self.raw(kernel) * items as f64).round() as u64)
    }

    /// Cycles for a branching selection of `items` items at observed
    /// selectivity `sel` ∈ [0, 1]: the branch-miss rate of an
    /// unpredictable predicate peaks at `sel = 0.5` (Ross, TODS'04).
    ///
    /// # Panics
    ///
    /// Panics if `sel` is outside `[0, 1]`.
    pub fn branching_cycles(&self, items: u64, sel: f64) -> Cycles {
        assert!((0.0..=1.0).contains(&sel), "selectivity must be in [0,1]");
        let miss_rate = 2.0 * sel * (1.0 - sel); // 0 at σ∈{0,1}, 0.5 at σ=0.5
        let per_item = self.raw(Kernel::SelectBranching) + miss_rate * self.branch_miss_penalty * self.scale;
        Cycles::new((per_item * items as f64).round() as u64)
    }

    /// Returns a copy rescaled by `factor` (used by calibration).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> KernelCosts {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        let mut c = self.clone();
        c.scale *= factor;
        c
    }

    /// The current calibration scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts::default_2013()
    }
}

/// Result of measuring the host with [`calibrate_host`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostCalibration {
    /// Measured simple-ALU throughput in operations per second per core.
    pub ops_per_sec: f64,
    /// Suggested scale factor for [`KernelCosts::scaled`] so model times
    /// computed at `reference_ghz` match host wall-clock.
    pub cost_scale: f64,
    /// The reference frequency the scale was computed against (GHz).
    pub reference_ghz: f64,
}

/// Measures the host's arithmetic throughput with a dependent-add spin
/// loop and derives a [`KernelCosts`] scale factor.
///
/// The loop has a serial dependency chain, so it retires ~1 add/cycle on
/// any out-of-order core — making `ops_per_sec` an effective-frequency
/// probe without reading performance counters (which containers often
/// forbid).
pub fn calibrate_host(reference_ghz: f64) -> HostCalibration {
    // ~50M dependent adds: long enough to be timer-noise free, short
    // enough for test suites.
    const ITERS: u64 = 50_000_000;
    let start = Instant::now();
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..ITERS {
        acc = acc.wrapping_add(i ^ (acc >> 7));
    }
    let dt = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    let ops_per_sec = ITERS as f64 / dt.max(1e-9);
    let host_ghz = ops_per_sec / 1e9;
    HostCalibration { ops_per_sec, cost_scale: (reference_ghz / host_ghz).clamp(0.05, 20.0), reference_ghz }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_ordered_sensibly() {
        let c = KernelCosts::default_2013();
        // SIMD-ish < branching (well-predicted) < predicated.
        assert!(c.raw(Kernel::SelectBitwise) < c.raw(Kernel::SelectBranching));
        assert!(c.raw(Kernel::SelectBranching) < c.raw(Kernel::SelectPredicated));
        // A point lookup costs far more than touching one scan item but
        // far less than scanning millions — that asymmetry is E1.
        assert!(c.raw(Kernel::IndexLookup) > 20.0 * c.raw(Kernel::SelectBitwise));
    }

    #[test]
    fn cycles_for_accumulates_fractions() {
        let c = KernelCosts::default_2013();
        // 1.2 cycles/item * 10 items = 12, not ceil(1.2)*10 = 20.
        assert_eq!(c.cycles_for(Kernel::SelectBitwise, 10), Cycles::new(12));
    }

    #[test]
    fn branching_peaks_at_half_selectivity() {
        let c = KernelCosts::default_2013();
        let lo = c.branching_cycles(1000, 0.01).count();
        let mid = c.branching_cycles(1000, 0.5).count();
        let hi = c.branching_cycles(1000, 0.99).count();
        assert!(mid > lo, "mid={mid} lo={lo}");
        assert!(mid > hi, "mid={mid} hi={hi}");
        // Symmetric around 0.5.
        let a = c.branching_cycles(1000, 0.3).count();
        let b = c.branching_cycles(1000, 0.7).count();
        assert_eq!(a, b);
    }

    #[test]
    fn branching_crossover_with_predicated_exists() {
        // At σ=0.5 branching must be *more* expensive than predicated,
        // at σ≈0 cheaper — the adaptivity experiment (E5) depends on it.
        let c = KernelCosts::default_2013();
        let items = 1_000_000;
        let pred = c.cycles_for(Kernel::SelectPredicated, items).count();
        assert!(c.branching_cycles(items, 0.5).count() > pred);
        assert!(c.branching_cycles(items, 0.001).count() < pred);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn branching_rejects_bad_selectivity() {
        let c = KernelCosts::default_2013();
        let _ = c.branching_cycles(10, 1.5);
    }

    #[test]
    fn scaling_multiplies() {
        let c = KernelCosts::default_2013();
        let s = c.scaled(2.0);
        assert_eq!(s.scale(), 2.0);
        assert_eq!(
            s.cycles_for(Kernel::AggUpdate, 100).count(),
            2 * c.cycles_for(Kernel::AggUpdate, 100).count()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_scale_panics() {
        let _ = KernelCosts::default_2013().scaled(0.0);
    }

    #[test]
    fn host_calibration_runs() {
        let cal = calibrate_host(2.9);
        assert!(cal.ops_per_sec > 1e7, "host slower than 10 MHz?!");
        assert!(cal.cost_scale > 0.0);
        assert_eq!(cal.reference_ghz, 2.9);
    }
}
