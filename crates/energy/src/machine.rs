//! The machine specification: every power-drawing component of the
//! modeled database server.
//!
//! The paper's energy arguments range over CPU cores (DVFS + parking),
//! DRAM ("main memory is the new disk"), NICs (compressed shipping),
//! disks (low-density data) and co-processors (GPU/FPGA offload). Each
//! component is described by a static/idle power plus a dynamic
//! energy-per-unit-of-work coefficient, which is the standard first-order
//! server model used e.g. by Tsirogiannis et al. (SIGMOD 2010).

use crate::pstate::PStateTable;
use crate::units::{ByteCount, Joules, Watts};

/// DRAM subsystem parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct DramSpec {
    /// Installed capacity in GiB (drives static power).
    pub capacity_gib: f64,
    /// Background/refresh power per GiB.
    pub static_w_per_gib: f64,
    /// Dynamic energy per byte read or written (picojoules).
    pub pj_per_byte: f64,
    /// Peak sustainable bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl DramSpec {
    /// 64 GiB of DDR3-1600: ~0.35 W/GiB refresh, ~60 pJ/B dynamic,
    /// ~40 GB/s per socket.
    pub fn ddr3_64gib() -> Self {
        DramSpec { capacity_gib: 64.0, static_w_per_gib: 0.35, pj_per_byte: 60.0, bandwidth: 40.0e9 }
    }

    /// Static (refresh + background) power of the whole DIMM population.
    pub fn static_power(&self) -> Watts {
        Watts::new(self.capacity_gib * self.static_w_per_gib)
    }

    /// Dynamic energy to move `bytes` to/from DRAM.
    pub fn dynamic_energy(&self, bytes: ByteCount) -> Joules {
        Joules::new(bytes.bytes() as f64 * self.pj_per_byte * 1e-12)
    }
}

/// Network interface parameters (per port).
#[derive(Clone, Debug, PartialEq)]
pub struct NicSpec {
    /// Idle power of the port (always on while the node is up).
    pub idle_w: f64,
    /// Dynamic energy per byte transferred (picojoules).
    pub pj_per_byte: f64,
    /// Line rate in bytes/second.
    pub bandwidth: f64,
}

impl NicSpec {
    /// A 10 GbE port: ~4 W idle, ~20 pJ/B incremental.
    pub fn ten_gbe() -> Self {
        NicSpec { idle_w: 4.0, pj_per_byte: 20.0, bandwidth: 10.0e9 / 8.0 }
    }

    /// Idle power of the port.
    pub fn idle_power(&self) -> Watts {
        Watts::new(self.idle_w)
    }

    /// Dynamic energy to push `bytes` through the port.
    pub fn dynamic_energy(&self, bytes: ByteCount) -> Joules {
        Joules::new(bytes.bytes() as f64 * self.pj_per_byte * 1e-12)
    }
}

/// Spinning-disk (or disk-farm share) parameters for the cold tier.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskSpec {
    /// Idle (spinning) power.
    pub idle_w: f64,
    /// Additional power while seeking/transferring.
    pub active_extra_w: f64,
    /// Sustained sequential bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Average seek + rotational latency in seconds.
    pub seek_s: f64,
}

impl DiskSpec {
    /// A 7200 rpm nearline SATA drive: 8 W idle, +4 W active,
    /// 140 MB/s sequential, 8 ms average positioning time.
    pub fn nearline_sata() -> Self {
        DiskSpec { idle_w: 8.0, active_extra_w: 4.0, bandwidth: 140.0e6, seek_s: 0.008 }
    }

    /// Idle (spinning) power of the drive.
    pub fn idle_power(&self) -> Watts {
        Watts::new(self.idle_w)
    }
}

/// A co-processor (GPU/FPGA stand-in) as seen by the placement model.
///
/// The paper (§III, §IV.B) argues for *hybrid* operators whose `work()`
/// phase runs on such a device while `init()`/`finish()` stay on the CPU.
/// The model captures exactly what that decision needs: throughput
/// advantage, transfer cost over the host link, and an idle draw that is
/// paid whether or not the device is used.
#[derive(Clone, Debug, PartialEq)]
pub struct CoprocSpec {
    /// Idle power of the device while powered on.
    pub idle_w: f64,
    /// Peak board power when busy.
    pub busy_w: f64,
    /// Scan/aggregate throughput in items per second (vs. CPU items/s).
    pub items_per_sec: f64,
    /// Host link bandwidth (PCIe) in bytes/second.
    pub link_bandwidth: f64,
    /// Host link energy per byte (picojoules).
    pub link_pj_per_byte: f64,
    /// Fixed kernel-launch latency per offloaded work() phase, seconds.
    pub launch_latency_s: f64,
}

impl CoprocSpec {
    /// A 2013 discrete GPU (Kepler class): 25 W idle, 180 W busy,
    /// ~6x CPU-core scan throughput, PCIe2 x16 ≈ 6 GB/s effective.
    pub fn kepler_gpu() -> Self {
        CoprocSpec {
            idle_w: 25.0,
            busy_w: 180.0,
            items_per_sec: 6.0e9,
            link_bandwidth: 6.0e9,
            link_pj_per_byte: 35.0,
            launch_latency_s: 30.0e-6,
        }
    }

    /// Idle power of the device.
    pub fn idle_power(&self) -> Watts {
        Watts::new(self.idle_w)
    }
}

/// Complete power model of one server node.
///
/// Construct with [`MachineSpec::commodity_2013`] and customize through
/// the builder-style `with_*` methods:
///
/// ```
/// use haec_energy::machine::{MachineSpec, CoprocSpec};
/// let m = MachineSpec::commodity_2013()
///     .with_cores(16)
///     .with_coproc(CoprocSpec::kepler_gpu());
/// assert_eq!(m.cores(), 16);
/// assert!(m.coproc().is_some());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    cores: usize,
    pstates: PStateTable,
    dram: DramSpec,
    nic: NicSpec,
    disk: Option<DiskSpec>,
    coproc: Option<CoprocSpec>,
    /// Fans, VRs, chipset: drawn whenever the node is powered.
    platform_w: f64,
}

impl MachineSpec {
    /// A commodity 2013 two-socket server: 8 cores (one socket modeled),
    /// 64 GiB DDR3, one 10 GbE port, one nearline disk, no co-processor,
    /// 45 W platform overhead.
    pub fn commodity_2013() -> Self {
        MachineSpec {
            cores: 8,
            pstates: PStateTable::xeon_2013(),
            dram: DramSpec::ddr3_64gib(),
            nic: NicSpec::ten_gbe(),
            disk: Some(DiskSpec::nearline_sata()),
            coproc: None,
            platform_w: 45.0,
        }
    }

    /// Sets the number of physical cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        self.cores = cores;
        self
    }

    /// Replaces the P-state table.
    pub fn with_pstates(mut self, pstates: PStateTable) -> Self {
        self.pstates = pstates;
        self
    }

    /// Replaces the DRAM subsystem spec.
    pub fn with_dram(mut self, dram: DramSpec) -> Self {
        self.dram = dram;
        self
    }

    /// Replaces the NIC spec.
    pub fn with_nic(mut self, nic: NicSpec) -> Self {
        self.nic = nic;
        self
    }

    /// Adds (or replaces) the cold-tier disk.
    pub fn with_disk(mut self, disk: DiskSpec) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Removes the disk (pure in-memory node).
    pub fn without_disk(mut self) -> Self {
        self.disk = None;
        self
    }

    /// Attaches a co-processor.
    pub fn with_coproc(mut self, coproc: CoprocSpec) -> Self {
        self.coproc = Some(coproc);
        self
    }

    /// Sets the constant platform (fans, VRs, chipset) power.
    pub fn with_platform_power(mut self, watts: f64) -> Self {
        self.platform_w = watts;
        self
    }

    /// Number of physical cores.
    #[inline]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The DVFS table shared by all cores.
    #[inline]
    pub fn pstates(&self) -> &PStateTable {
        &self.pstates
    }

    /// DRAM subsystem parameters.
    #[inline]
    pub fn dram(&self) -> &DramSpec {
        &self.dram
    }

    /// NIC parameters.
    #[inline]
    pub fn nic(&self) -> &NicSpec {
        &self.nic
    }

    /// Cold-tier disk parameters, if present.
    #[inline]
    pub fn disk(&self) -> Option<&DiskSpec> {
        self.disk.as_ref()
    }

    /// Co-processor parameters, if present.
    #[inline]
    pub fn coproc(&self) -> Option<&CoprocSpec> {
        self.coproc.as_ref()
    }

    /// Constant platform power.
    #[inline]
    pub fn platform_power(&self) -> Watts {
        Watts::new(self.platform_w)
    }

    /// Power drawn by the node with every core parked and all devices
    /// idle — the floor that motivates consolidation + node shutdown in
    /// the elasticity experiments (E11/E12).
    pub fn idle_floor(&self) -> Watts {
        use crate::pstate::CState;
        let mut p = self.platform_power() + self.dram.static_power() + self.nic.idle_power();
        let per_core = self.pstates.core_power(self.pstates.slowest(), CState::Parked);
        p += per_core * self.cores as f64;
        if let Some(d) = &self.disk {
            p += d.idle_power();
        }
        if let Some(c) = &self.coproc {
            p += c.idle_power();
        }
        p
    }

    /// Peak power with all cores active at the fastest P-state and every
    /// device busy — used to express energy budgets as a fraction of
    /// peak (Fig. 2 experiment).
    pub fn peak_power(&self) -> Watts {
        use crate::pstate::CState;
        let mut p = self.platform_power() + self.dram.static_power() + self.nic.idle_power();
        let per_core = self.pstates.core_power(self.pstates.fastest(), CState::Active);
        p += per_core * self.cores as f64;
        if let Some(d) = &self.disk {
            p += Watts::new(d.idle_w + d.active_extra_w);
        }
        if let Some(c) = &self.coproc {
            p += Watts::new(c.busy_w);
        }
        p
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::commodity_2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_defaults_plausible() {
        let m = MachineSpec::commodity_2013();
        assert_eq!(m.cores(), 8);
        let idle = m.idle_floor().watts();
        let peak = m.peak_power().watts();
        // 2013 servers idled at 40-60% of peak; our model's idle floor
        // (everything parked) should be well below peak but nonzero.
        assert!(idle > 50.0, "idle floor {idle}");
        assert!(peak > 150.0, "peak {peak}");
        assert!(idle < peak * 0.6, "idle {idle} vs peak {peak}");
    }

    #[test]
    fn builder_round_trip() {
        let m = MachineSpec::commodity_2013()
            .with_cores(32)
            .with_platform_power(60.0)
            .with_coproc(CoprocSpec::kepler_gpu())
            .without_disk();
        assert_eq!(m.cores(), 32);
        assert_eq!(m.platform_power(), Watts::new(60.0));
        assert!(m.coproc().is_some());
        assert!(m.disk().is_none());
    }

    #[test]
    fn dram_energy_scales_with_bytes() {
        let d = DramSpec::ddr3_64gib();
        let e1 = d.dynamic_energy(ByteCount::from_mib(1));
        let e2 = d.dynamic_energy(ByteCount::from_mib(2));
        assert!((e2.joules() - 2.0 * e1.joules()).abs() < 1e-15);
        // 1 GiB at 60 pJ/B ≈ 64 mJ.
        let e = d.dynamic_energy(ByteCount::from_gib(1)).joules();
        assert!((0.01..0.2).contains(&e), "dram energy/GiB {e} J");
    }

    #[test]
    fn nic_energy_and_idle() {
        let n = NicSpec::ten_gbe();
        assert!(n.idle_power().watts() > 0.0);
        let e = n.dynamic_energy(ByteCount::from_gib(1)).joules();
        assert!(e > 0.0 && e < 1.0, "nic energy/GiB {e} J");
    }

    #[test]
    fn coproc_idle_tax() {
        let m = MachineSpec::commodity_2013();
        let with = m.clone().with_coproc(CoprocSpec::kepler_gpu());
        assert!(with.idle_floor().watts() > m.idle_floor().watts() + 20.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = MachineSpec::commodity_2013().with_cores(0);
    }
}
