//! Energy accounting: domains, the [`EnergyMeter`], and emulated RAPL
//! counters.
//!
//! Real servers expose energy through RAPL (Running Average Power Limit)
//! MSRs: monotonically increasing counters in units of ~15.3 µJ that wrap
//! around after 2³² units. Because this reproduction must run on machines
//! without RAPL access (containers, non-Intel hosts), the meter *emulates*
//! those counters on top of the analytical model — including the wraparound
//! behaviour, so downstream reading code is exercised exactly as it would
//! be against real hardware.

use crate::units::{Joules, Watts};
use std::fmt;
use std::time::Duration;

/// An accounting domain, mirroring the RAPL domain split plus the extra
/// components our machine model meters separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Whole-package domain (cores + uncore); RAPL `PKG`.
    Package,
    /// Core-only domain; RAPL `PP0`.
    Cores,
    /// Memory domain; RAPL `DRAM`.
    Dram,
    /// Network interfaces (not covered by RAPL; metered analytically).
    Nic,
    /// Cold-tier disks.
    Disk,
    /// Attached co-processor (GPU/FPGA stand-in).
    Coproc,
}

impl Domain {
    /// All domains in canonical order.
    pub const ALL: [Domain; 6] =
        [Domain::Package, Domain::Cores, Domain::Dram, Domain::Nic, Domain::Disk, Domain::Coproc];
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::Package => "package",
            Domain::Cores => "cores",
            Domain::Dram => "dram",
            Domain::Nic => "nic",
            Domain::Disk => "disk",
            Domain::Coproc => "coproc",
        };
        f.write_str(s)
    }
}

const NUM_DOMAINS: usize = Domain::ALL.len();

/// Energy per RAPL counter unit: the common 2^-16 J ≈ 15.26 µJ setting.
pub const RAPL_UNIT_JOULES: f64 = 1.0 / 65536.0;

/// RAPL counters are 32-bit and wrap; at ~65 W that is roughly every
/// 1000 seconds, so wrap handling is not optional in practice.
pub const RAPL_WRAP_UNITS: u64 = 1 << 32;

/// Accumulates energy per [`Domain`] and exposes emulated RAPL registers.
///
/// ```
/// use haec_energy::meter::{Domain, EnergyMeter};
/// use haec_energy::units::Joules;
/// let mut m = EnergyMeter::new();
/// m.add(Domain::Cores, Joules::new(1.5));
/// assert_eq!(m.total(Domain::Cores), Joules::new(1.5));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyMeter {
    joules: [f64; NUM_DOMAINS],
    elapsed: Duration,
}

impl EnergyMeter {
    /// Creates a meter with all domains at zero.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Adds `energy` to `domain`. Core/DRAM energy is *also* folded into
    /// [`Domain::Package`], mirroring how the hardware PKG domain
    /// subsumes PP0 and (on servers) memory-controller draw.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative; meters are monotonic.
    pub fn add(&mut self, domain: Domain, energy: Joules) {
        assert!(energy.joules() >= 0.0, "energy increments must be non-negative");
        self.joules[domain_index(domain)] += energy.joules();
        if matches!(domain, Domain::Cores | Domain::Dram) {
            self.joules[domain_index(Domain::Package)] += energy.joules();
        }
    }

    /// Integrates a constant `power` over `dt` into `domain`.
    pub fn integrate(&mut self, domain: Domain, power: Watts, dt: Duration) {
        self.add(domain, power * dt);
    }

    /// Advances the meter's notion of elapsed (virtual or wall) time.
    pub fn advance(&mut self, dt: Duration) {
        self.elapsed += dt;
    }

    /// Total elapsed time recorded through [`EnergyMeter::advance`].
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Cumulative energy of one domain.
    pub fn total(&self, domain: Domain) -> Joules {
        Joules::new(self.joules[domain_index(domain)])
    }

    /// Sum over all *leaf* domains (package excluded to avoid double
    /// counting cores + dram).
    pub fn grand_total(&self) -> Joules {
        let mut sum = 0.0;
        for d in Domain::ALL {
            if d != Domain::Package {
                sum += self.joules[domain_index(d)];
            }
        }
        Joules::new(sum)
    }

    /// Average power over the recorded elapsed time, if any time passed.
    pub fn average_power(&self) -> Option<Watts> {
        if self.elapsed.is_zero() {
            None
        } else {
            Some(self.grand_total() / self.elapsed)
        }
    }

    /// Emulated RAPL register read for `domain`: the cumulative energy in
    /// RAPL units, wrapped to 32 bits exactly like the MSR.
    pub fn rapl_read(&self, domain: Domain) -> u64 {
        let units = (self.joules[domain_index(domain)] / RAPL_UNIT_JOULES) as u64;
        units % RAPL_WRAP_UNITS
    }

    /// Merges another meter's counters into this one (used when joining
    /// per-thread meters after a parallel pipeline).
    pub fn merge(&mut self, other: &EnergyMeter) {
        for i in 0..NUM_DOMAINS {
            self.joules[i] += other.joules[i];
        }
        self.elapsed += other.elapsed;
    }

    /// A point-in-time snapshot of all domains.
    pub fn snapshot(&self) -> EnergySnapshot {
        EnergySnapshot { joules: self.joules, elapsed: self.elapsed }
    }

    /// Energy accumulated per domain since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `earlier` was taken from a meter with
    /// larger counters (i.e., is not actually earlier).
    pub fn since(&self, earlier: &EnergySnapshot) -> EnergySnapshot {
        let mut joules = [0.0; NUM_DOMAINS];
        for i in 0..NUM_DOMAINS {
            debug_assert!(self.joules[i] >= earlier.joules[i] - 1e-9);
            joules[i] = self.joules[i] - earlier.joules[i];
        }
        EnergySnapshot { joules, elapsed: self.elapsed.saturating_sub(earlier.elapsed) }
    }
}

#[inline]
fn domain_index(d: Domain) -> usize {
    match d {
        Domain::Package => 0,
        Domain::Cores => 1,
        Domain::Dram => 2,
        Domain::Nic => 3,
        Domain::Disk => 4,
        Domain::Coproc => 5,
    }
}

/// An immutable copy of meter state, used for interval accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergySnapshot {
    joules: [f64; NUM_DOMAINS],
    elapsed: Duration,
}

impl EnergySnapshot {
    /// Energy of one domain in this snapshot.
    pub fn total(&self, domain: Domain) -> Joules {
        Joules::new(self.joules[domain_index(domain)])
    }

    /// Sum over all leaf domains.
    pub fn grand_total(&self) -> Joules {
        let mut sum = 0.0;
        for d in Domain::ALL {
            if d != Domain::Package {
                sum += self.joules[domain_index(d)];
            }
        }
        Joules::new(sum)
    }

    /// Elapsed time covered by this snapshot.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }
}

impl fmt::Display for EnergySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkg={:.3} dram={:.3} nic={:.3} disk={:.3} coproc={:.3} (J)",
            self.total(Domain::Package).joules(),
            self.total(Domain::Dram).joules(),
            self.total(Domain::Nic).joules(),
            self.total(Domain::Disk).joules(),
            self.total(Domain::Coproc).joules(),
        )
    }
}

/// Computes the energy delta between two raw RAPL register reads,
/// handling at most one wraparound — exactly the idiom used when polling
/// the real MSRs.
///
/// ```
/// use haec_energy::meter::{rapl_delta, RAPL_WRAP_UNITS};
/// assert_eq!(rapl_delta(10, 4), RAPL_WRAP_UNITS - 10 + 4); // wrapped
/// assert_eq!(rapl_delta(4, 10), 6);
/// ```
#[inline]
pub fn rapl_delta(before: u64, after: u64) -> u64 {
    if after >= before {
        after - before
    } else {
        RAPL_WRAP_UNITS - before + after
    }
}

/// Converts a RAPL-unit delta to joules.
#[inline]
pub fn rapl_units_to_joules(units: u64) -> Joules {
    Joules::new(units as f64 * RAPL_UNIT_JOULES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut m = EnergyMeter::new();
        m.add(Domain::Nic, Joules::new(2.0));
        m.add(Domain::Nic, Joules::new(3.0));
        assert_eq!(m.total(Domain::Nic), Joules::new(5.0));
    }

    #[test]
    fn cores_and_dram_roll_into_package() {
        let mut m = EnergyMeter::new();
        m.add(Domain::Cores, Joules::new(1.0));
        m.add(Domain::Dram, Joules::new(0.5));
        m.add(Domain::Nic, Joules::new(0.25));
        assert_eq!(m.total(Domain::Package), Joules::new(1.5));
        // Grand total counts leaves once.
        assert_eq!(m.grand_total(), Joules::new(1.75));
    }

    #[test]
    fn integrate_power() {
        let mut m = EnergyMeter::new();
        m.integrate(Domain::Disk, Watts::new(12.0), Duration::from_secs(10));
        assert_eq!(m.total(Domain::Disk), Joules::new(120.0));
    }

    #[test]
    fn average_power_requires_elapsed_time() {
        let mut m = EnergyMeter::new();
        m.add(Domain::Cores, Joules::new(30.0));
        assert!(m.average_power().is_none());
        m.advance(Duration::from_secs(3));
        let p = m.average_power().expect("elapsed > 0");
        assert_eq!(p, Watts::new(10.0));
    }

    #[test]
    fn snapshot_delta() {
        let mut m = EnergyMeter::new();
        m.add(Domain::Cores, Joules::new(1.0));
        m.advance(Duration::from_secs(1));
        let s = m.snapshot();
        m.add(Domain::Cores, Joules::new(2.0));
        m.advance(Duration::from_secs(2));
        let d = m.since(&s);
        assert_eq!(d.total(Domain::Cores), Joules::new(2.0));
        assert_eq!(d.elapsed(), Duration::from_secs(2));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = EnergyMeter::new();
        a.add(Domain::Dram, Joules::new(1.0));
        let mut b = EnergyMeter::new();
        b.add(Domain::Dram, Joules::new(2.0));
        b.advance(Duration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.total(Domain::Dram), Joules::new(3.0));
        assert_eq!(a.elapsed(), Duration::from_secs(1));
    }

    #[test]
    fn rapl_read_is_in_units() {
        let mut m = EnergyMeter::new();
        m.add(Domain::Cores, Joules::new(1.0));
        let units = m.rapl_read(Domain::Cores);
        assert_eq!(units, 65536);
    }

    #[test]
    fn rapl_read_wraps_at_32_bits() {
        let mut m = EnergyMeter::new();
        // 2^32 units = 65536 J; add a bit more and expect a wrapped value.
        m.add(Domain::Cores, Joules::new(65536.0 + 1.0));
        let units = m.rapl_read(Domain::Cores);
        assert_eq!(units, 65536);
    }

    #[test]
    fn rapl_delta_handles_wrap() {
        assert_eq!(rapl_delta(100, 300), 200);
        let before = RAPL_WRAP_UNITS - 50;
        assert_eq!(rapl_delta(before, 10), 60);
    }

    #[test]
    fn rapl_units_to_joules_round_trip() {
        let j = rapl_units_to_joules(65536);
        assert!((j.joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_panics() {
        let mut m = EnergyMeter::new();
        m.add(Domain::Cores, Joules::new(-1.0));
    }

    #[test]
    fn domain_display() {
        assert_eq!(format!("{}", Domain::Dram), "dram");
        let s = EnergyMeter::new().snapshot();
        assert!(format!("{s}").contains("pkg=0.000"));
    }
}
