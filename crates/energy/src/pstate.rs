//! DVFS performance states (P-states) and core sleep states (C-states).
//!
//! The paper argues that "energy can be saved, if individual hardware
//! components are turned off to save idle power" (§IV). This module models
//! the two knobs a scheduler has on a 2013-era server CPU:
//!
//! * **P-states** — voltage/frequency pairs. Active power follows the
//!   classic CMOS law `P = C_eff · V² · f + P_leak(V)`.
//! * **C-states** — per-core sleep states from `Active` down to `Parked`
//!   (core power-gated, the paper's "turned off" case).

use crate::units::{Hertz, Volts, Watts};
use std::fmt;
use std::time::Duration;

/// One voltage/frequency operating point of a core.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PState {
    frequency: Hertz,
    voltage: Volts,
}

impl PState {
    /// Creates a P-state from a frequency and supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if frequency or voltage is not strictly positive.
    pub fn new(frequency: Hertz, voltage: Volts) -> Self {
        assert!(frequency.hertz() > 0.0, "frequency must be positive");
        assert!(voltage.volts() > 0.0, "voltage must be positive");
        PState { frequency, voltage }
    }

    /// The clock frequency of this state.
    #[inline]
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// The supply voltage of this state.
    #[inline]
    pub fn voltage(&self) -> Volts {
        self.voltage
    }
}

impl fmt::Display for PState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz @ {:.2} V", self.frequency.ghz(), self.voltage.volts())
    }
}

/// Index into a [`PStateTable`]. `PStateId(0)` is the *lowest* frequency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PStateId(pub usize);

impl fmt::Display for PStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Per-core sleep state, ordered from most to least power-hungry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CState {
    /// Core is executing instructions at some P-state.
    #[default]
    Active,
    /// Clock-gated halt (ACPI C1): quickly resumable, still leaking.
    Halt,
    /// Deep sleep (ACPI C6): caches flushed, longer wake latency.
    DeepSleep,
    /// Power-gated ("parked"): near-zero draw, slowest to wake.
    Parked,
}

impl CState {
    /// Wake-up latency from this state back to [`CState::Active`].
    pub fn wake_latency(self) -> Duration {
        match self {
            CState::Active => Duration::ZERO,
            CState::Halt => Duration::from_micros(1),
            CState::DeepSleep => Duration::from_micros(100),
            CState::Parked => Duration::from_millis(2),
        }
    }
}

impl fmt::Display for CState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CState::Active => "active",
            CState::Halt => "halt",
            CState::DeepSleep => "deep-sleep",
            CState::Parked => "parked",
        };
        f.write_str(s)
    }
}

/// The DVFS model of one core: a ladder of P-states plus the CMOS power
/// law constants used to derive active power at each state.
#[derive(Clone, Debug, PartialEq)]
pub struct PStateTable {
    states: Vec<PState>,
    /// Effective switched capacitance term `C_eff` in `P = C_eff·V²·f`.
    ceff: f64,
    /// Leakage power at nominal voltage, scales linearly with voltage.
    leak_at_nominal: Watts,
    nominal_voltage: Volts,
    /// Residual draw per C-state as a fraction of leakage power.
    halt_fraction: f64,
    deep_sleep_fraction: f64,
    parked_fraction: f64,
}

impl PStateTable {
    /// Builds a table from explicit `(frequency, voltage)` operating
    /// points and CMOS constants.
    ///
    /// `states` must be sorted by ascending frequency.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or not sorted by ascending frequency.
    pub fn new(states: Vec<PState>, ceff: f64, leak_at_nominal: Watts, nominal_voltage: Volts) -> Self {
        assert!(!states.is_empty(), "at least one P-state is required");
        assert!(
            states.windows(2).all(|w| w[0].frequency() < w[1].frequency()),
            "P-states must be sorted by ascending frequency"
        );
        PStateTable {
            states,
            ceff,
            leak_at_nominal,
            nominal_voltage,
            halt_fraction: 0.30,
            deep_sleep_fraction: 0.10,
            parked_fraction: 0.02,
        }
    }

    /// A ladder modeled on a 2013 Xeon E5 (Sandy/Ivy Bridge era): five
    /// states from 1.2 GHz to 2.9 GHz with voltage scaling, ~4 W leakage
    /// per core and ~10 W/core peak dynamic power.
    ///
    /// The absolute numbers are calibrated against the per-core power
    /// range reported by Tsirogiannis et al. (SIGMOD 2010) for a
    /// comparable server; the reproduction only relies on their shape.
    pub fn xeon_2013() -> Self {
        let pts = [(1.2, 0.80), (1.6, 0.90), (2.0, 0.95), (2.4, 1.00), (2.9, 1.10)];
        let states = pts.iter().map(|&(f, v)| PState::new(Hertz::from_ghz(f), Volts::new(v))).collect();
        // C_eff chosen so the top state draws ~10.2 W dynamic:
        // 2.9e9 Hz * 1.1^2 V^2 * 2.9e-9 ≈ 10.2 W.
        PStateTable::new(states, 2.9e-9, Watts::new(4.0), Volts::new(1.1))
    }

    /// Number of P-states in the ladder.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the table holds no states (never for public
    /// constructors, provided for `len`/`is_empty` pairing).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The operating point for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn state(&self, id: PStateId) -> PState {
        self.states[id.0]
    }

    /// Returns the state id with the lowest frequency.
    #[inline]
    pub fn slowest(&self) -> PStateId {
        PStateId(0)
    }

    /// Returns the state id with the highest frequency.
    #[inline]
    pub fn fastest(&self) -> PStateId {
        PStateId(self.states.len() - 1)
    }

    /// Iterates over all `(id, state)` pairs, slowest first.
    pub fn iter(&self) -> impl Iterator<Item = (PStateId, PState)> + '_ {
        self.states.iter().enumerate().map(|(i, s)| (PStateId(i), *s))
    }

    /// Dynamic (switching) power of one active core at `id`.
    pub fn dynamic_power(&self, id: PStateId) -> Watts {
        let s = self.state(id);
        let v = s.voltage().volts();
        Watts::new(self.ceff * v * v * s.frequency().hertz())
    }

    /// Leakage power of one core at the voltage of `id`; approximately
    /// linear in supply voltage.
    pub fn leakage_power(&self, id: PStateId) -> Watts {
        let v = self.state(id).voltage().volts();
        self.leak_at_nominal * (v / self.nominal_voltage.volts())
    }

    /// Total power of one core in C-state `c`, at P-state `id` when
    /// active.
    pub fn core_power(&self, id: PStateId, c: CState) -> Watts {
        match c {
            CState::Active => self.dynamic_power(id) + self.leakage_power(id),
            CState::Halt => self.leakage_power(id) * self.halt_fraction,
            CState::DeepSleep => self.leakage_power(id) * self.deep_sleep_fraction,
            CState::Parked => self.leakage_power(id) * self.parked_fraction,
        }
    }

    /// The slowest P-state whose frequency is at least `f`, or the
    /// fastest state if none qualifies. This is the "pace" primitive used
    /// by deadline-aware governors.
    pub fn slowest_at_least(&self, f: Hertz) -> PStateId {
        for (id, s) in self.iter() {
            if s.frequency().hertz() >= f.hertz() {
                return id;
            }
        }
        self.fastest()
    }

    /// Energy per cycle (J) of one active core at `id` — the quantity
    /// that makes "race-to-idle vs pace" non-trivial: low frequency means
    /// fewer joules per cycle dynamically, but leakage is paid for longer.
    pub fn energy_per_cycle(&self, id: PStateId) -> f64 {
        let p = self.core_power(id, CState::Active).watts();
        p / self.state(id).frequency().hertz()
    }
}

impl Default for PStateTable {
    fn default() -> Self {
        PStateTable::xeon_2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_shape() {
        let t = PStateTable::xeon_2013();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.slowest(), PStateId(0));
        assert_eq!(t.fastest(), PStateId(4));
    }

    #[test]
    fn dynamic_power_increases_with_frequency() {
        let t = PStateTable::xeon_2013();
        let powers: Vec<f64> = t.iter().map(|(id, _)| t.dynamic_power(id).watts()).collect();
        assert!(powers.windows(2).all(|w| w[0] < w[1]), "{powers:?}");
    }

    #[test]
    fn top_state_power_plausible() {
        let t = PStateTable::xeon_2013();
        let p = t.core_power(t.fastest(), CState::Active).watts();
        // One core of a 2013 server: roughly 8..20 W.
        assert!((8.0..20.0).contains(&p), "core power {p} W out of range");
    }

    #[test]
    fn parked_power_is_tiny() {
        let t = PStateTable::xeon_2013();
        let active = t.core_power(t.fastest(), CState::Active).watts();
        let parked = t.core_power(t.fastest(), CState::Parked).watts();
        assert!(parked < active * 0.02, "parked {parked} vs active {active}");
    }

    #[test]
    fn cstate_ordering_and_latency() {
        assert!(CState::Active < CState::Halt);
        assert!(CState::Halt < CState::DeepSleep);
        assert!(CState::DeepSleep < CState::Parked);
        assert!(CState::Parked.wake_latency() > CState::Halt.wake_latency());
        assert_eq!(CState::Active.wake_latency(), Duration::ZERO);
    }

    #[test]
    fn cstate_power_strictly_decreasing() {
        let t = PStateTable::xeon_2013();
        let id = t.fastest();
        let seq = [CState::Active, CState::Halt, CState::DeepSleep, CState::Parked];
        let ps: Vec<f64> = seq.iter().map(|&c| t.core_power(id, c).watts()).collect();
        assert!(ps.windows(2).all(|w| w[0] > w[1]), "{ps:?}");
    }

    #[test]
    fn slowest_at_least_picks_correct_state() {
        let t = PStateTable::xeon_2013();
        let id = t.slowest_at_least(Hertz::from_ghz(1.7));
        assert_eq!(t.state(id).frequency().ghz(), 2.0);
        // Unreachable frequency clamps to fastest.
        let id = t.slowest_at_least(Hertz::from_ghz(9.0));
        assert_eq!(id, t.fastest());
        // Trivially low frequency gives the slowest state.
        let id = t.slowest_at_least(Hertz::from_ghz(0.1));
        assert_eq!(id, t.slowest());
    }

    #[test]
    fn energy_per_cycle_favors_low_frequency_dynamically() {
        // With voltage scaling, energy/cycle should be lower at the
        // slowest state than at the fastest (dynamic term dominates).
        let t = PStateTable::xeon_2013();
        let lo = t.energy_per_cycle(t.slowest());
        let hi = t.energy_per_cycle(t.fastest());
        assert!(lo < hi, "lo={lo} hi={hi}");
    }

    #[test]
    #[should_panic(expected = "sorted by ascending frequency")]
    fn unsorted_states_panic() {
        let s1 = PState::new(Hertz::from_ghz(2.0), Volts::new(1.0));
        let s2 = PState::new(Hertz::from_ghz(1.0), Volts::new(0.9));
        let _ = PStateTable::new(vec![s1, s2], 1e-9, Watts::new(1.0), Volts::new(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one P-state")]
    fn empty_states_panic() {
        let _ = PStateTable::new(vec![], 1e-9, Watts::new(1.0), Volts::new(1.0));
    }

    #[test]
    fn display_impls() {
        let s = PState::new(Hertz::from_ghz(2.4), Volts::new(1.0));
        assert_eq!(format!("{s}"), "2.40 GHz @ 1.00 V");
        assert_eq!(format!("{}", PStateId(3)), "P3");
        assert_eq!(format!("{}", CState::Parked), "parked");
    }
}
