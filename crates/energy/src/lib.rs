//! # haec-energy
//!
//! Analytical power/energy model with emulated RAPL counters — the
//! metering substrate of the `haecdb` reproduction of
//! *W. Lehner, "Energy-Efficient In-Memory Database Computing" (DATE 2013)*.
//!
//! The paper argues that a database must treat energy as a first-class
//! optimization objective next to response time ("elasticity in the
//! small", Fig. 2). Doing so requires three things this crate provides:
//!
//! 1. **A machine power model** ([`machine::MachineSpec`]): cores with
//!    DVFS [`pstate::PStateTable`] and sleep states, DRAM, NIC, disk and
//!    an optional co-processor, each with static power and dynamic
//!    energy-per-work coefficients.
//! 2. **Metering** ([`meter::EnergyMeter`]): per-domain joule accounting
//!    with an emulated RAPL register interface (µJ units, 32-bit
//!    wraparound) so code written against real hardware counters runs
//!    unchanged.
//! 3. **Dual-objective costing** ([`profile::CostEstimator`]): maps a
//!    [`profile::ResourceProfile`] to `(time, energy)` under a chosen
//!    P-state and degree of parallelism — the primitive the optimizer
//!    uses to trade watts against milliseconds.
//!
//! ## Example
//!
//! ```
//! use haec_energy::prelude::*;
//!
//! // Cost a 100M-cycle, 64 MiB scan at the fastest and slowest P-state.
//! let est = CostEstimator::new(MachineSpec::commodity_2013());
//! let profile = ResourceProfile::scan(Cycles::new(100_000_000), ByteCount::from_mib(64));
//! let fast = est.estimate(&profile, ExecutionContext::single(est.machine().pstates().fastest()));
//! let slow = est.estimate(&profile, ExecutionContext::single(est.machine().pstates().slowest()));
//! assert!(fast.time < slow.time);                       // racing is faster…
//! assert!(fast.breakdown.cpu > slow.breakdown.cpu);     // …but burns more core energy
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod machine;
pub mod meter;
pub mod profile;
pub mod pstate;
pub mod units;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::calibrate::{Kernel, KernelCosts};
    pub use crate::machine::{CoprocSpec, DiskSpec, DramSpec, MachineSpec, NicSpec};
    pub use crate::meter::{Domain, EnergyMeter, EnergySnapshot};
    pub use crate::profile::{
        CostEstimate, CostEstimator, EnergyBreakdown, ExecutionContext, ResourceProfile,
    };
    pub use crate::pstate::{CState, PState, PStateId, PStateTable};
    pub use crate::units::{ByteCount, Cycles, Hertz, Joules, Volts, Watts};
}

pub use calibrate::{Kernel, KernelCosts};
pub use machine::MachineSpec;
pub use meter::{Domain, EnergyMeter};
pub use profile::{CostEstimate, CostEstimator, ExecutionContext, ResourceProfile};
pub use pstate::{CState, PStateId, PStateTable};
pub use units::{ByteCount, Cycles, Joules, Watts};
