//! Resource profiles and the dual-objective cost estimator.
//!
//! Every operator in the engine reports *what it did* as a
//! [`ResourceProfile`] (cycles retired, DRAM traffic, NIC traffic, …).
//! The [`CostEstimator`] maps a profile onto a [`MachineSpec`] at a given
//! P-state and produces a [`CostEstimate`] carrying **both** objectives
//! the paper's optimizer must weigh: wall-clock time and energy. This is
//! the kernel of the Fig. 2 reproduction — "flexibly balance query
//! response time minimization and throughput maximization under a given
//! energy constraint".

use crate::machine::MachineSpec;
use crate::meter::{Domain, EnergyMeter};
use crate::pstate::{CState, PStateId};
use crate::units::{ByteCount, Cycles, Joules, Watts};
use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// The resources consumed by one unit of work (an operator invocation, a
/// morsel, a query, a transfer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceProfile {
    /// CPU core-cycles retired.
    pub cpu_cycles: Cycles,
    /// Bytes read from DRAM (beyond cache).
    pub dram_read: ByteCount,
    /// Bytes written to DRAM.
    pub dram_written: ByteCount,
    /// Bytes pushed through the NIC.
    pub nic_bytes: ByteCount,
    /// Bytes read sequentially from disk.
    pub disk_read: ByteCount,
    /// Number of random disk accesses (seeks).
    pub disk_seeks: u64,
    /// Items processed on the co-processor (0 = no offload).
    pub coproc_items: u64,
    /// Bytes moved over the host↔co-processor link.
    pub coproc_link_bytes: ByteCount,
}

impl ResourceProfile {
    /// An empty profile.
    pub fn new() -> Self {
        ResourceProfile::default()
    }

    /// Convenience constructor for a pure-CPU profile.
    pub fn cpu(cycles: Cycles) -> Self {
        ResourceProfile { cpu_cycles: cycles, ..ResourceProfile::default() }
    }

    /// Convenience constructor for a CPU + DRAM-read profile, the common
    /// shape of a column scan.
    pub fn scan(cycles: Cycles, dram_read: ByteCount) -> Self {
        ResourceProfile { cpu_cycles: cycles, dram_read, ..ResourceProfile::default() }
    }

    /// Returns `true` if nothing was consumed.
    pub fn is_empty(&self) -> bool {
        *self == ResourceProfile::default()
    }

    /// Scales every resource by an integer factor (e.g. repeat count).
    pub fn repeat(&self, n: u64) -> ResourceProfile {
        ResourceProfile {
            cpu_cycles: self.cpu_cycles * n,
            dram_read: self.dram_read * n,
            dram_written: self.dram_written * n,
            nic_bytes: self.nic_bytes * n,
            disk_read: self.disk_read * n,
            disk_seeks: self.disk_seeks * n,
            coproc_items: self.coproc_items * n,
            coproc_link_bytes: self.coproc_link_bytes * n,
        }
    }
}

impl Add for ResourceProfile {
    type Output = ResourceProfile;
    fn add(self, rhs: ResourceProfile) -> ResourceProfile {
        ResourceProfile {
            cpu_cycles: self.cpu_cycles + rhs.cpu_cycles,
            dram_read: self.dram_read + rhs.dram_read,
            dram_written: self.dram_written + rhs.dram_written,
            nic_bytes: self.nic_bytes + rhs.nic_bytes,
            disk_read: self.disk_read + rhs.disk_read,
            disk_seeks: self.disk_seeks + rhs.disk_seeks,
            coproc_items: self.coproc_items + rhs.coproc_items,
            coproc_link_bytes: self.coproc_link_bytes + rhs.coproc_link_bytes,
        }
    }
}

impl AddAssign for ResourceProfile {
    fn add_assign(&mut self, rhs: ResourceProfile) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ResourceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cpu, {} dram-r, {} dram-w, {} nic, {} disk ({} seeks)",
            self.cpu_cycles,
            self.dram_read,
            self.dram_written,
            self.nic_bytes,
            self.disk_read,
            self.disk_seeks
        )
    }
}

/// The execution context a profile is costed under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutionContext {
    /// DVFS state of the cores doing the work.
    pub pstate: PStateId,
    /// Degree of parallelism (cores concurrently working on the profile).
    pub cores: usize,
}

impl ExecutionContext {
    /// Single-core execution at the given P-state.
    pub fn single(pstate: PStateId) -> Self {
        ExecutionContext { pstate, cores: 1 }
    }

    /// Parallel execution on `cores` cores at the given P-state.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn parallel(pstate: PStateId, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        ExecutionContext { pstate, cores }
    }
}

/// Per-domain energy attribution of a [`CostEstimate`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core dynamic + leakage energy for the busy period.
    pub cpu: Joules,
    /// DRAM static share + dynamic access energy.
    pub dram: Joules,
    /// NIC transfer energy.
    pub nic: Joules,
    /// Disk energy (active share).
    pub disk: Joules,
    /// Co-processor energy (busy power × busy time + link transfer).
    pub coproc: Joules,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Joules {
        self.cpu + self.dram + self.nic + self.disk + self.coproc
    }
}

/// The dual-objective result of costing a profile: how long it takes and
/// how many joules it burns.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostEstimate {
    /// Predicted wall-clock time.
    pub time: Duration,
    /// Predicted energy.
    pub energy: Joules,
    /// Attribution per component.
    pub breakdown: EnergyBreakdown,
}

impl CostEstimate {
    /// The energy-delay product of this estimate (lower is better).
    pub fn edp(&self) -> f64 {
        crate::units::energy_delay_product(self.energy, self.time)
    }

    /// Sequential composition: times add, energies add.
    pub fn then(&self, next: &CostEstimate) -> CostEstimate {
        CostEstimate {
            time: self.time + next.time,
            energy: self.energy + next.energy,
            breakdown: EnergyBreakdown {
                cpu: self.breakdown.cpu + next.breakdown.cpu,
                dram: self.breakdown.dram + next.breakdown.dram,
                nic: self.breakdown.nic + next.breakdown.nic,
                disk: self.breakdown.disk + next.breakdown.disk,
                coproc: self.breakdown.coproc + next.breakdown.coproc,
            },
        }
    }

    /// Parallel composition: time is the max, energies add.
    pub fn alongside(&self, other: &CostEstimate) -> CostEstimate {
        CostEstimate {
            time: self.time.max(other.time),
            energy: self.energy + other.energy,
            breakdown: EnergyBreakdown {
                cpu: self.breakdown.cpu + other.breakdown.cpu,
                dram: self.breakdown.dram + other.breakdown.dram,
                nic: self.breakdown.nic + other.breakdown.nic,
                disk: self.breakdown.disk + other.breakdown.disk,
                coproc: self.breakdown.coproc + other.breakdown.coproc,
            },
        }
    }
}

impl fmt::Display for CostEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms / {:.3} J", self.time.as_secs_f64() * 1e3, self.energy.joules())
    }
}

/// Maps resource profiles to `(time, energy)` on a concrete machine.
///
/// ```
/// use haec_energy::machine::MachineSpec;
/// use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
/// use haec_energy::units::{ByteCount, Cycles};
///
/// let machine = MachineSpec::commodity_2013();
/// let est = CostEstimator::new(machine);
/// let profile = ResourceProfile::scan(Cycles::new(1_000_000), ByteCount::from_mib(1));
/// let ctx = ExecutionContext::single(est.machine().pstates().fastest());
/// let cost = est.estimate(&profile, ctx);
/// assert!(cost.time.as_nanos() > 0);
/// assert!(cost.energy.joules() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct CostEstimator {
    machine: MachineSpec,
}

impl CostEstimator {
    /// Creates an estimator for `machine`.
    pub fn new(machine: MachineSpec) -> Self {
        CostEstimator { machine }
    }

    /// The machine this estimator costs against.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Estimates time and energy for `profile` under `ctx`.
    ///
    /// Timing model (documented so experiments can be interpreted):
    /// * CPU and DRAM stream overlap (roofline): the busy period is the
    ///   max of compute time and memory time.
    /// * Disk, NIC and co-processor link phases serialize with the CPU
    ///   phase (a deliberate first-order simplification).
    /// * `ctx.cores` divides cycle *and* DRAM time (bandwidth shared,
    ///   but scans parallelize across memory channels until the
    ///   machine's bandwidth cap, which the divisor models implicitly).
    ///
    /// Energy model: static power of a component is charged for the time
    /// the component is *held* by this work; dynamic energy is charged
    /// per unit of work. Idle energy of the rest of the machine is *not*
    /// charged here — that is the scheduler's job (it knows what else
    /// runs); see `haec-sched`.
    pub fn estimate(&self, profile: &ResourceProfile, ctx: ExecutionContext) -> CostEstimate {
        let m = &self.machine;
        let ps = m.pstates();
        let cores = ctx.cores.min(m.cores()).max(1) as f64;
        let freq = ps.state(ctx.pstate).frequency();

        // --- busy period: CPU vs DRAM roofline --------------------------
        let cpu_time = if profile.cpu_cycles.count() == 0 {
            0.0
        } else {
            profile.cpu_cycles.count() as f64 / (freq.hertz() * cores)
        };
        let dram_bytes = profile.dram_read + profile.dram_written;
        let dram_time =
            if dram_bytes.bytes() == 0 { 0.0 } else { dram_bytes.bytes() as f64 / m.dram().bandwidth };
        let busy = cpu_time.max(dram_time);

        // --- serialized phases ------------------------------------------
        let nic_time = if profile.nic_bytes.bytes() == 0 {
            0.0
        } else {
            profile.nic_bytes.bytes() as f64 / m.nic().bandwidth
        };
        let (disk_time, disk_energy) = match (m.disk(), profile.disk_read.bytes(), profile.disk_seeks) {
            (Some(d), bytes, seeks) if bytes > 0 || seeks > 0 => {
                let t = bytes as f64 / d.bandwidth + seeks as f64 * d.seek_s;
                (t, Watts::new(d.active_extra_w) * Duration::from_secs_f64(t))
            }
            _ => (0.0, Joules::ZERO),
        };
        let (coproc_time, coproc_energy) =
            match (m.coproc(), profile.coproc_items, profile.coproc_link_bytes.bytes()) {
                (Some(c), items, link) if items > 0 || link > 0 => {
                    let launch = if items > 0 { c.launch_latency_s } else { 0.0 };
                    let work = items as f64 / c.items_per_sec;
                    let xfer = link as f64 / c.link_bandwidth;
                    let t = launch + work + xfer;
                    let busy_e = Watts::new(c.busy_w - c.idle_w) * Duration::from_secs_f64(launch + work);
                    let link_e = Joules::new(link as f64 * c.link_pj_per_byte * 1e-12);
                    (t, busy_e + link_e)
                }
                _ => (0.0, Joules::ZERO),
            };

        let total_time = busy + nic_time + disk_time + coproc_time;

        // --- energy ------------------------------------------------------
        let core_power = ps.core_power(ctx.pstate, CState::Active);
        let cpu_energy = core_power * cores * Duration::from_secs_f64(busy);
        let dram_energy =
            m.dram().dynamic_energy(dram_bytes) + m.dram().static_power() * Duration::from_secs_f64(busy);
        let nic_energy = m.nic().dynamic_energy(profile.nic_bytes);

        let breakdown = EnergyBreakdown {
            cpu: cpu_energy,
            dram: dram_energy,
            nic: nic_energy,
            disk: disk_energy,
            coproc: coproc_energy,
        };
        CostEstimate { time: Duration::from_secs_f64(total_time), energy: breakdown.total(), breakdown }
    }

    /// Estimates and simultaneously charges the energy to `meter`,
    /// advancing its clock — the one-stop call used by the executor after
    /// running an operator for real.
    pub fn charge(
        &self,
        profile: &ResourceProfile,
        ctx: ExecutionContext,
        meter: &mut EnergyMeter,
    ) -> CostEstimate {
        let cost = self.estimate(profile, ctx);
        meter.add(Domain::Cores, cost.breakdown.cpu);
        meter.add(Domain::Dram, cost.breakdown.dram);
        meter.add(Domain::Nic, cost.breakdown.nic);
        meter.add(Domain::Disk, cost.breakdown.disk);
        meter.add(Domain::Coproc, cost.breakdown.coproc);
        meter.advance(cost.time);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> CostEstimator {
        CostEstimator::new(MachineSpec::commodity_2013())
    }

    #[test]
    fn empty_profile_costs_nothing() {
        let e = est();
        let ctx = ExecutionContext::single(e.machine().pstates().fastest());
        let c = e.estimate(&ResourceProfile::new(), ctx);
        assert_eq!(c.time, Duration::ZERO);
        assert_eq!(c.energy, Joules::ZERO);
    }

    #[test]
    fn cpu_time_scales_with_frequency() {
        let e = est();
        let p = ResourceProfile::cpu(Cycles::new(2_900_000_000));
        let fast = e.estimate(&p, ExecutionContext::single(e.machine().pstates().fastest()));
        let slow = e.estimate(&p, ExecutionContext::single(e.machine().pstates().slowest()));
        // 2.9 GHz vs 1.2 GHz.
        assert!((fast.time.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!(slow.time > fast.time);
        let ratio = slow.time.as_secs_f64() / fast.time.as_secs_f64();
        assert!((ratio - 2.9 / 1.2).abs() < 1e-9);
    }

    #[test]
    fn parallelism_divides_cpu_time() {
        let e = est();
        let p = ResourceProfile::cpu(Cycles::new(1_000_000_000));
        let ps = e.machine().pstates().fastest();
        let one = e.estimate(&p, ExecutionContext::single(ps));
        let four = e.estimate(&p, ExecutionContext::parallel(ps, 4));
        let ratio = one.time.as_secs_f64() / four.time.as_secs_f64();
        assert!((ratio - 4.0).abs() < 1e-6);
    }

    #[test]
    fn cores_clamped_to_machine() {
        let e = est();
        let p = ResourceProfile::cpu(Cycles::new(1_000_000_000));
        let ps = e.machine().pstates().fastest();
        let c8 = e.estimate(&p, ExecutionContext::parallel(ps, 8));
        let c800 = e.estimate(&p, ExecutionContext::parallel(ps, 800));
        assert_eq!(c8.time, c800.time);
    }

    #[test]
    fn roofline_memory_bound() {
        let e = est();
        // Tiny compute, huge memory traffic: memory time dominates.
        let p = ResourceProfile::scan(Cycles::new(1000), ByteCount::from_gib(4));
        let ps = e.machine().pstates().fastest();
        let c = e.estimate(&p, ExecutionContext::single(ps));
        let expected = (4u64 << 30) as f64 / e.machine().dram().bandwidth;
        assert!((c.time.as_secs_f64() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn race_to_idle_tradeoff_exists() {
        // Core energy per cycle is lower at low frequency, but the busy
        // period is longer so DRAM static energy grows: the estimator
        // must expose both effects.
        let e = est();
        let p = ResourceProfile::cpu(Cycles::new(10_000_000_000));
        let fast = e.estimate(&p, ExecutionContext::single(e.machine().pstates().fastest()));
        let slow = e.estimate(&p, ExecutionContext::single(e.machine().pstates().slowest()));
        assert!(slow.breakdown.cpu < fast.breakdown.cpu, "dynamic CPU energy should fall");
        assert!(slow.breakdown.dram > fast.breakdown.dram, "static DRAM share should rise");
    }

    #[test]
    fn nic_serializes_and_charges() {
        let e = est();
        let p = ResourceProfile { nic_bytes: ByteCount::from_mib(125), ..Default::default() };
        let ps = e.machine().pstates().fastest();
        let c = e.estimate(&p, ExecutionContext::single(ps));
        // 125 MiB over 1.25 GB/s ≈ 0.105 s.
        assert!(c.time.as_secs_f64() > 0.09);
        assert!(c.breakdown.nic.joules() > 0.0);
    }

    #[test]
    fn disk_seeks_cost_time() {
        let e = est();
        let p = ResourceProfile { disk_seeks: 100, ..Default::default() };
        let ps = e.machine().pstates().fastest();
        let c = e.estimate(&p, ExecutionContext::single(ps));
        assert!((c.time.as_secs_f64() - 0.8).abs() < 1e-9);
        assert!(c.breakdown.disk.joules() > 0.0);
    }

    #[test]
    fn coproc_requires_device() {
        let e = est(); // no coproc on default machine
        let p = ResourceProfile { coproc_items: 1_000_000, ..Default::default() };
        let ps = e.machine().pstates().fastest();
        let c = e.estimate(&p, ExecutionContext::single(ps));
        assert_eq!(c.breakdown.coproc, Joules::ZERO);
    }

    #[test]
    fn coproc_offload_costed() {
        use crate::machine::CoprocSpec;
        let m = MachineSpec::commodity_2013().with_coproc(CoprocSpec::kepler_gpu());
        let e = CostEstimator::new(m);
        let p = ResourceProfile {
            coproc_items: 6_000_000_000,
            coproc_link_bytes: ByteCount::from_gib(1),
            ..Default::default()
        };
        let ps = e.machine().pstates().fastest();
        let c = e.estimate(&p, ExecutionContext::single(ps));
        assert!(c.time.as_secs_f64() > 1.0, "1s work + transfer");
        assert!(c.breakdown.coproc.joules() > 100.0, "GPU busy energy");
    }

    #[test]
    fn charge_updates_meter() {
        let e = est();
        let mut meter = EnergyMeter::new();
        let p = ResourceProfile::scan(Cycles::new(1_000_000), ByteCount::from_mib(1));
        let ps = e.machine().pstates().fastest();
        let c = e.charge(&p, ExecutionContext::single(ps), &mut meter);
        assert!((meter.grand_total().joules() - c.energy.joules()).abs() < 1e-12);
        assert_eq!(meter.elapsed(), c.time);
    }

    #[test]
    fn composition_then_alongside() {
        let a = CostEstimate {
            time: Duration::from_millis(10),
            energy: Joules::new(1.0),
            breakdown: EnergyBreakdown { cpu: Joules::new(1.0), ..Default::default() },
        };
        let b = CostEstimate {
            time: Duration::from_millis(30),
            energy: Joules::new(2.0),
            breakdown: EnergyBreakdown { dram: Joules::new(2.0), ..Default::default() },
        };
        let seq = a.then(&b);
        assert_eq!(seq.time, Duration::from_millis(40));
        assert_eq!(seq.energy, Joules::new(3.0));
        let par = a.alongside(&b);
        assert_eq!(par.time, Duration::from_millis(30));
        assert_eq!(par.energy, Joules::new(3.0));
    }

    #[test]
    fn profile_arithmetic() {
        let a = ResourceProfile::cpu(Cycles::new(10));
        let b = ResourceProfile::scan(Cycles::new(5), ByteCount::new(100));
        let s = a + b;
        assert_eq!(s.cpu_cycles, Cycles::new(15));
        assert_eq!(s.dram_read, ByteCount::new(100));
        let r = b.repeat(3);
        assert_eq!(r.cpu_cycles, Cycles::new(15));
        assert_eq!(r.dram_read, ByteCount::new(300));
        assert!(ResourceProfile::new().is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn display_smoke() {
        let c = CostEstimate::default();
        assert!(format!("{c}").contains("ms"));
        let p = ResourceProfile::cpu(Cycles::new(1));
        assert!(format!("{p}").contains("cpu"));
    }
}
