//! Physical-unit newtypes used throughout the energy model.
//!
//! Following C-NEWTYPE, quantities that would otherwise all be `f64`
//! (energy, power, frequency, voltage) get distinct types so that a
//! [`Joules`] value can never be accidentally fed where [`Watts`] is
//! expected. Arithmetic between the types follows physics:
//! `Watts * Duration = Joules`, `Joules / Duration = Watts`, and so on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::time::Duration;

macro_rules! unit_f64 {
    ($(#[$doc:meta])* $name:ident, $unit:literal, $accessor:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a new quantity from a raw value in base units.
            ///
            /// # Panics
            ///
            /// Panics (debug builds only) if `value` is NaN; unit
            /// quantities must stay totally ordered for cost comparison.
            #[inline]
            pub fn new(value: f64) -> Self {
                debug_assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                $name(value)
            }

            /// Returns the raw value in base units.
            #[inline]
            pub fn $accessor(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 { self } else { other }
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 { self } else { other }
            }

            /// Returns `true` if the value is a finite number.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, Add::add)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{:.3} {}", self.0, $unit)
                }
            }
        }
    };
}

unit_f64!(
    /// An amount of energy in joules.
    ///
    /// ```
    /// use haec_energy::units::{Joules, Watts};
    /// use std::time::Duration;
    /// let e = Watts::new(40.0) * Duration::from_millis(500);
    /// assert_eq!(e, Joules::new(20.0));
    /// ```
    Joules, "J", joules
);
unit_f64!(
    /// Electrical power in watts.
    ///
    /// ```
    /// use haec_energy::units::Watts;
    /// let total = Watts::new(35.0) + Watts::new(4.5);
    /// assert!((total.watts() - 39.5).abs() < 1e-12);
    /// ```
    Watts, "W", watts
);
unit_f64!(
    /// A clock frequency in hertz.
    ///
    /// ```
    /// use haec_energy::units::Hertz;
    /// assert_eq!(Hertz::from_ghz(2.0).hertz(), 2.0e9);
    /// ```
    Hertz, "Hz", hertz
);
unit_f64!(
    /// A supply voltage in volts.
    ///
    /// ```
    /// use haec_energy::units::Volts;
    /// assert_eq!(Volts::new(1.1).volts(), 1.1);
    /// ```
    Volts, "V", volts
);

impl Joules {
    /// Creates an energy quantity from microjoules (the RAPL native unit).
    #[inline]
    pub fn from_micro(uj: f64) -> Self {
        Joules::new(uj * 1e-6)
    }

    /// Returns the energy in microjoules.
    #[inline]
    pub fn microjoules(self) -> f64 {
        self.joules() * 1e6
    }

    /// Returns the energy in watt-hours (data-center billing unit).
    #[inline]
    pub fn watt_hours(self) -> f64 {
        self.joules() / 3600.0
    }
}

impl Hertz {
    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz::new(ghz * 1e9)
    }

    /// Returns the frequency in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.hertz() * 1e-9
    }
}

impl Mul<Duration> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Duration) -> Joules {
        Joules::new(self.watts() * rhs.as_secs_f64())
    }
}

impl Mul<Watts> for Duration {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Duration> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Duration) -> Watts {
        Watts::new(self.joules() / rhs.as_secs_f64())
    }
}

impl Div<Watts> for Joules {
    /// Energy divided by power yields the time the power must be sustained.
    type Output = Duration;
    #[inline]
    fn div(self, rhs: Watts) -> Duration {
        Duration::from_secs_f64(self.joules() / rhs.watts())
    }
}

/// A count of CPU core-cycles.
///
/// Kept as an integer type because cycle counts originate from counters and
/// per-item cost constants; converting to time requires a [`Hertz`]
/// frequency via [`Cycles::at`].
///
/// ```
/// use haec_energy::units::{Cycles, Hertz};
/// let t = Cycles::new(3_000_000).at(Hertz::from_ghz(3.0));
/// assert_eq!(t.as_micros(), 1_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero cycle count.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Time taken to retire this many cycles at frequency `f` on one core.
    #[inline]
    pub fn at(self, f: Hertz) -> Duration {
        Duration::from_secs_f64(self.0 as f64 / f.hertz())
    }

    /// Saturating addition of two cycle counts.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A byte count flowing through a component (DRAM, NIC, disk).
///
/// ```
/// use haec_energy::units::ByteCount;
/// let b = ByteCount::from_mib(2);
/// assert_eq!(b.bytes(), 2 * 1024 * 1024);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteCount(u64);

impl ByteCount {
    /// The zero byte count.
    pub const ZERO: ByteCount = ByteCount(0);

    /// Creates a byte count.
    #[inline]
    pub fn new(bytes: u64) -> Self {
        ByteCount(bytes)
    }

    /// Creates a byte count from kibibytes.
    #[inline]
    pub fn from_kib(kib: u64) -> Self {
        ByteCount(kib * 1024)
    }

    /// Creates a byte count from mebibytes.
    #[inline]
    pub fn from_mib(mib: u64) -> Self {
        ByteCount(mib * 1024 * 1024)
    }

    /// Creates a byte count from gibibytes.
    #[inline]
    pub fn from_gib(gib: u64) -> Self {
        ByteCount(gib * 1024 * 1024 * 1024)
    }

    /// Returns the raw number of bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the size in mebibytes as a float.
    #[inline]
    pub fn mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Time to move this many bytes at `bytes_per_sec` throughput.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[inline]
    pub fn over_bandwidth(self, bytes_per_sec: f64) -> Duration {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Duration::from_secs_f64(self.0 as f64 / bytes_per_sec)
    }

    /// Saturating addition of two byte counts.
    #[inline]
    pub fn saturating_add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_add(rhs.0))
    }
}

impl Add for ByteCount {
    type Output = ByteCount;
    #[inline]
    fn add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0 + rhs.0)
    }
}

impl AddAssign for ByteCount {
    #[inline]
    fn add_assign(&mut self, rhs: ByteCount) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for ByteCount {
    type Output = ByteCount;
    #[inline]
    fn mul(self, rhs: u64) -> ByteCount {
        ByteCount(self.0 * rhs)
    }
}

impl Sum for ByteCount {
    fn sum<I: Iterator<Item = ByteCount>>(iter: I) -> ByteCount {
        iter.fold(ByteCount::ZERO, Add::add)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// Energy-Delay Product, the classic combined efficiency metric.
///
/// Lower is better; used by the experiment harness to rank plans that
/// trade response time against energy (paper §IV, Fig. 2).
#[inline]
pub fn energy_delay_product(energy: Joules, delay: Duration) -> f64 {
    energy.joules() * delay.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_times_duration_is_joules() {
        let e = Watts::new(100.0) * Duration::from_secs(2);
        assert_eq!(e, Joules::new(200.0));
        let e2 = Duration::from_millis(250) * Watts::new(8.0);
        assert_eq!(e2, Joules::new(2.0));
    }

    #[test]
    fn joules_over_duration_is_watts() {
        let p = Joules::new(50.0) / Duration::from_secs(5);
        assert_eq!(p, Watts::new(10.0));
    }

    #[test]
    fn joules_over_watts_is_duration() {
        let t = Joules::new(90.0) / Watts::new(45.0);
        assert_eq!(t, Duration::from_secs(2));
    }

    #[test]
    fn unit_ratio_is_dimensionless() {
        assert_eq!(Joules::new(10.0) / Joules::new(4.0), 2.5);
    }

    #[test]
    fn cycles_at_frequency() {
        let t = Cycles::new(2_000_000_000).at(Hertz::from_ghz(2.0));
        assert_eq!(t, Duration::from_secs(1));
    }

    #[test]
    fn cycles_sum_and_mul() {
        let total: Cycles = [Cycles::new(1), Cycles::new(2), Cycles::new(3)].into_iter().sum();
        assert_eq!(total, Cycles::new(6));
        assert_eq!(Cycles::new(5) * 3, Cycles::new(15));
    }

    #[test]
    fn byte_count_constructors() {
        assert_eq!(ByteCount::from_kib(1).bytes(), 1024);
        assert_eq!(ByteCount::from_mib(1).bytes(), 1 << 20);
        assert_eq!(ByteCount::from_gib(1).bytes(), 1 << 30);
    }

    #[test]
    fn byte_count_bandwidth_time() {
        let t = ByteCount::from_mib(100).over_bandwidth(100.0 * 1024.0 * 1024.0);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn byte_count_zero_bandwidth_panics() {
        let _ = ByteCount::new(1).over_bandwidth(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Joules::new(1.5)), "1.500 J");
        assert_eq!(format!("{:.1}", Watts::new(2.25)), "2.2 W");
        assert_eq!(format!("{}", ByteCount::new(512)), "512 B");
        assert_eq!(format!("{}", ByteCount::from_kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", ByteCount::from_mib(3)), "3.00 MiB");
        assert_eq!(format!("{}", ByteCount::from_gib(4)), "4.00 GiB");
        assert_eq!(format!("{}", Cycles::new(7)), "7 cycles");
    }

    #[test]
    fn micro_joule_round_trip() {
        let e = Joules::from_micro(1_500_000.0);
        assert!((e.joules() - 1.5).abs() < 1e-12);
        assert!((e.microjoules() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn watt_hours() {
        assert!((Joules::new(3600.0).watt_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let a = Watts::new(1.0);
        let b = Watts::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn edp_metric() {
        let edp = energy_delay_product(Joules::new(10.0), Duration::from_secs(2));
        assert_eq!(edp, 20.0);
    }
}
